// Minimal JSON emitter: nested objects/arrays of numbers, strings and
// booleans - just enough for machine-readable tool and bench output
// (nmo-trace --json, BENCH_*.json artifacts) without a dependency.  Keys
// and string values must not need escaping (caller-controlled
// identifiers); value(std::string) escapes nothing by design.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace nmo {

class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{', '}'); }
  JsonWriter& end_object() { return close(); }
  JsonWriter& begin_array() { return open('[', ']'); }
  JsonWriter& end_array() { return close(); }

  JsonWriter& key(const std::string& k) {
    comma();
    out_ += '"';
    out_ += k;
    out_ += "\": ";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(double v) {
    // JSON has no NaN/Infinity literals; "%g" would emit "nan"/"inf" and
    // break every strict parser downstream.  null is the standard stand-in.
    if (!std::isfinite(v)) return raw("null");
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return raw(buf);
  }
  JsonWriter& value(std::uint64_t v) { return raw(std::to_string(v)); }
  JsonWriter& value(std::uint32_t v) { return raw(std::to_string(v)); }
  JsonWriter& value(int v) { return raw(std::to_string(v)); }
  JsonWriter& value(bool v) { return raw(v ? "true" : "false"); }
  JsonWriter& value(const std::string& v) { return raw('"' + v + '"'); }
  JsonWriter& value(const char* v) { return value(std::string(v)); }

  [[nodiscard]] const std::string& str() const { return out_; }

  /// Writes the document (plus a trailing newline) to `path`; returns
  /// false on I/O failure.
  [[nodiscard]] bool write_file(const std::string& path) const {
    std::ofstream out(path, std::ios::trunc);
    out << out_ << "\n";
    return static_cast<bool>(out);
  }

 private:
  JsonWriter& open(char open_ch, char close_ch) {
    comma();
    out_ += open_ch;
    stack_.push_back(close_ch);
    first_.push_back(true);
    return *this;
  }
  JsonWriter& close() {
    out_ += stack_.back();
    stack_.pop_back();
    first_.pop_back();
    return *this;
  }
  JsonWriter& raw(const std::string& text) {
    comma();
    out_ += text;
    return *this;
  }
  void comma() {
    if (pending_value_) {
      pending_value_ = false;  // the value completing a "key": pair
      return;
    }
    if (!first_.empty()) {
      if (!first_.back()) out_ += ", ";
      first_.back() = false;
    }
  }

  std::string out_;
  std::vector<char> stack_;
  std::vector<bool> first_;
  bool pending_value_ = false;
};

}  // namespace nmo
