// Thread-safe errno formatting.
//
// std::strerror returns a pointer into static (possibly thread-shared)
// storage - clang-tidy's concurrency-mt-unsafe is right to reject it in a
// codebase whose senders and collectors format socket errors from worker
// threads.  errno_message wraps strerror_r, normalizing the two
// incompatible shapes the libc may expose (glibc's GNU char* return vs
// the POSIX/XSI int-and-fill-buffer contract) via overload resolution.
#pragma once

#include <cstring>
#include <string>

namespace nmo {
namespace detail {

/// GNU strerror_r: the message is whatever pointer came back (it may or
/// may not be the caller's buffer).
inline const char* strerror_text(const char* returned, const char*) { return returned; }
inline const char* strerror_text(char* returned, const char*) { return returned; }
/// XSI strerror_r: 0 means the buffer was filled.
inline const char* strerror_text(int returned, const char* buffer) {
  return returned == 0 ? buffer : "unknown error";
}

}  // namespace detail

/// The message text for errno value `err`; safe from any thread.
inline std::string errno_message(int err) {
  char buffer[256] = {};
  return detail::strerror_text(strerror_r(err, buffer, sizeof(buffer)), buffer);
}

}  // namespace nmo
