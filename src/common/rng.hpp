// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator (SPE interval perturbation,
// synthetic graph generation, rating matrices) flows through Rng so that a
// (seed, stream) pair fully reproduces a run.  The generator is
// xoshiro256** seeded via SplitMix64, the standard recommendation of the
// xoshiro authors; it is far faster than std::mt19937_64 and has no
// observable bias at the scales used here.
#pragma once

#include <cstdint>

namespace nmo {

/// SplitMix64 step; used standalone for hashing and to seed xoshiro.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** engine with convenience distributions.
class Rng {
 public:
  /// Seeds the four-word state from a single seed through SplitMix64.
  /// Distinct `stream` values give statistically independent sequences for
  /// the same seed (used for per-trial and per-thread streams).
  explicit Rng(std::uint64_t seed = 0x9ef1a6c081d3f2ull, std::uint64_t stream = 0) noexcept {
    std::uint64_t sm = seed ^ (0x632be59bd9b4e019ull * (stream + 1));
    for (auto& w : state_) w = splitmix64(sm);
  }

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t uniform(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // 128-bit multiply keeps the distribution exactly uniform.
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Exponential variate with unit mean (inverse transform).
  double exponential() noexcept {
    double u = uniform01();
    if (u >= 1.0) u = 0.9999999999999999;
    return -__builtin_log(1.0 - u);
  }

  /// Approximately normal variate via the sum of three uniforms (Irwin-Hall,
  /// adequate for jitter-style noise; exactness is not needed).
  double normalish(double mean, double stddev) noexcept {
    const double s = uniform01() + uniform01() + uniform01();  // mean 1.5, var 0.25
    return mean + (s - 1.5) * 2.0 * stddev;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace nmo
