// Streaming statistics helpers.
//
// The paper reports mean and standard deviation over >=5 trials for every
// measurement; RunningStats implements Welford's online algorithm so benches
// can accumulate without storing samples.  LinearFit supports the linearity
// check in Fig. 7 (samples vs. 1/period).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace nmo {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }

  /// Merges another accumulator (parallel reduction form of Welford).
  void merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ += delta * static_cast<double>(other.n_) / total;
    n_ += other.n_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Least-squares fit y = slope*x + intercept with correlation coefficient.
class LinearFit {
 public:
  void add(double x, double y) noexcept {
    ++n_;
    sx_ += x;
    sy_ += y;
    sxx_ += x * x;
    syy_ += y * y;
    sxy_ += x * y;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }

  [[nodiscard]] double slope() const noexcept {
    const double n = static_cast<double>(n_);
    const double denom = n * sxx_ - sx_ * sx_;
    return denom != 0.0 ? (n * sxy_ - sx_ * sy_) / denom : 0.0;
  }

  [[nodiscard]] double intercept() const noexcept {
    const double n = static_cast<double>(n_);
    return n > 0 ? (sy_ - slope() * sx_) / n : 0.0;
  }

  /// Pearson correlation r; |r| near 1 means the relation is linear.
  [[nodiscard]] double correlation() const noexcept {
    const double n = static_cast<double>(n_);
    const double num = n * sxy_ - sx_ * sy_;
    const double den = std::sqrt((n * sxx_ - sx_ * sx_) * (n * syy_ - sy_ * sy_));
    return den != 0.0 ? num / den : 0.0;
  }

 private:
  std::uint64_t n_ = 0;
  double sx_ = 0, sy_ = 0, sxx_ = 0, syy_ = 0, sxy_ = 0;
};

}  // namespace nmo
