// Per-session RegionTable persistence (ROADMAP: "nmo-trace query depth").
//
// Trace samples carry only a region *index*; the names live in the
// session's core::RegionTable and used to die with the process.  Each
// session now writes its table to a sidecar next to the trace
// ("trace.nmot" -> "trace.nmor"), so nmo-trace `top --by region` can
// label rows with names instead of bare indices.
//
// The sidecar is a line-based text format (regions are few; compactness
// does not matter here the way it does for samples):
//
//   nmo-regions<TAB>1          header: magic + version
//   <count>
//   <start-hex><TAB><end-hex><TAB><name>   per region, in index order
//
// Names are escaped (\\, \t, \n) so arbitrary tag names round-trip.
//
// Merging traces merges tables too: RegionUnion folds N session tables
// into one de-duplicated union (keyed by name + range, first-seen order)
// and hands back, per input table, the old-index -> union-index mapping
// the merger applies to every sample it writes (store/trace_merger.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/regions.hpp"

namespace nmo::store {

/// Conventional extension for region sidecar files ("<name>.nmor").
inline constexpr std::string_view kRegionExtension = ".nmor";

/// Sidecar path for a trace file: swaps a trailing ".nmot" for ".nmor"
/// (appends ".nmor" when the trace path has some other extension).
[[nodiscard]] std::string region_path_for(const std::string& trace_path);

/// Writes `regions` to `path`.  Returns false (and sets *error) on I/O
/// failure.
bool write_region_file(const std::string& path, const std::vector<core::AddrRegion>& regions,
                       std::string* error = nullptr);

/// Reads a sidecar written by write_region_file.  nullopt (and *error) on
/// missing file, bad magic/version, or malformed rows.
std::optional<std::vector<core::AddrRegion>> read_region_file(const std::string& path,
                                                              std::string* error = nullptr);

/// Folds per-session region tables into one union table.  Identical
/// regions (same name, start and end) collapse to one union entry, and
/// the union is sorted by (name, start, end) - so the union (and every
/// remapped sample, and therefore the merged trace's fingerprint) is
/// identical no matter what order the tables were added in.  That
/// order-independence is what lets CI merge session files from a shell
/// glob while the example computes its expectation in job order.
class RegionUnion {
 public:
  /// Adds one table; returns a handle for mapping().
  std::size_t add(std::vector<core::AddrRegion> regions);

  /// The sorted, de-duplicated union of every table added so far.
  [[nodiscard]] const std::vector<core::AddrRegion>& regions() const;

  /// old-index -> union-index for the table behind `handle`.  (Union
  /// indices are only stable once all tables are added: a later add()
  /// can shift the sorted positions.)
  [[nodiscard]] std::vector<std::int32_t> mapping(std::size_t handle) const;

 private:
  void build() const;

  std::vector<std::vector<core::AddrRegion>> tables_;
  mutable std::vector<core::AddrRegion> union_;  ///< Cache; rebuilt after add().
  mutable bool built_ = false;
};

}  // namespace nmo::store
