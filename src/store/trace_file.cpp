#include "store/trace_file.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <limits>

namespace nmo::store {
namespace {

// --- little-endian fixed-width + LEB128 varint codec ------------------------

void put_bytes(std::vector<std::byte>& out, std::uint64_t v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<std::byte>(v & 0xff));
    v >>= 8;
  }
}

void put_varint(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

/// Signed delta between two u64 counters (wrap-around safe).
std::uint64_t delta_of(std::uint64_t value, std::uint64_t base) {
  return zigzag(static_cast<std::int64_t>(value - base));
}

std::uint64_t apply_delta(std::uint64_t base, std::uint64_t encoded) {
  return base + static_cast<std::uint64_t>(unzigzag(encoded));
}

void write_raw(std::ofstream& out, const void* data, std::size_t n) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
}

bool read_raw(std::ifstream& in, void* data, std::size_t n) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  return static_cast<std::size_t>(in.gcount()) == n;
}

bool read_fixed(std::ifstream& in, std::uint64_t& v, std::size_t n) {
  std::array<unsigned char, 8> buf{};
  if (!read_raw(in, buf.data(), n)) return false;
  v = 0;
  for (std::size_t i = 0; i < n; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return true;
}

/// Why a varint read stopped.  kOverflow - a 10th byte whose payload bits do
/// not fit in the 64-bit value, or a continuation bit past the 10th byte -
/// means the bytes cannot be a value this format ever wrote: corruption, not
/// truncation, and the two must fail with different messages.
enum class VarintResult { kOk, kEof, kOverflow };

VarintResult read_varint(std::ifstream& in, std::uint64_t& v) {
  v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    const int c = in.get();
    if (c == std::ifstream::traits_type::eof()) return VarintResult::kEof;
    const auto bits = static_cast<std::uint64_t>(c & 0x7f);
    // At shift 63 only the low bit of the final byte lands inside the value;
    // anything above it would be silently shifted out.
    if (shift == 63 && bits > 1) return VarintResult::kOverflow;
    v |= bits << shift;
    if ((c & 0x80) == 0) return VarintResult::kOk;
  }
  return VarintResult::kOverflow;  // continuation bit past the 10th byte
}

VarintResult read_varint(std::span<const std::byte> buf, std::size_t& pos, std::uint64_t& v) {
  v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (pos >= buf.size()) return VarintResult::kEof;
    const auto c = std::to_integer<unsigned>(buf[pos++]);
    const auto bits = static_cast<std::uint64_t>(c & 0x7f);
    if (shift == 63 && bits > 1) return VarintResult::kOverflow;
    v |= bits << shift;
    if ((c & 0x80) == 0) return VarintResult::kOk;
  }
  return VarintResult::kOverflow;
}

/// `core` must already be validated against kMaxCores.
detail::CorePredictor& predictor_for(std::vector<detail::CorePredictor>& predictors,
                                     CoreId core) {
  if (core >= predictors.size()) predictors.resize(static_cast<std::size_t>(core) + 1);
  return predictors[core];
}

constexpr std::size_t kHeaderBytes = 4 + 2 + 2;
/// v1 footer: marker + u64 count + 16-byte MD5 + end magic.
constexpr std::size_t kFooterV1Bytes = 1 + 8 + 16 + 4;
/// v2 footer: v1 fields + u64 index offset (before the end magic).
constexpr std::size_t kFooterV2Bytes = kFooterV1Bytes + 8;
/// Worst-case encoded sample: a 2-byte core slot, three 10-byte varint
/// deltas, the packed op/level byte, a 3-byte latency and a 5-byte region.
/// Bounds a v2 block's declared raw payload so a corrupt header cannot
/// demand an absurd decode buffer.
constexpr std::size_t kMaxSampleEncodedBytes = 2 + 10 + 10 + 10 + 1 + 3 + 5;
constexpr std::uint64_t kMaxBlockRawBytes =
    TraceWriter::kMaxBlockSamples * kMaxSampleEncodedBytes;

bool same_blocks(const std::vector<BlockIndexEntry>& a, const std::vector<BlockIndexEntry>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].offset != b[i].offset || a[i].core != b[i].core || a[i].samples != b[i].samples) {
      return false;
    }
  }
  return true;
}

/// Parses the index entries following a consumed kIndexMarker byte.
/// Validates per-entry ranges and strictly increasing offsets; contextual
/// checks (offsets inside the block region, counts summing to the footer
/// count) are the caller's.
bool parse_index_entries(std::ifstream& in, std::vector<BlockIndexEntry>& out,
                         std::string& message) {
  out.clear();
  std::uint64_t blocks = 0;
  if (read_varint(in, blocks) != VarintResult::kOk) {
    message = "truncated block index";
    return false;
  }
  // Every block holds at least one sample, so the count can never exceed
  // what a file of any plausible size could store; this bound just stops a
  // corrupt header from driving a near-infinite parse loop.
  if (blocks > (std::uint64_t{1} << 40)) {
    message = "corrupt block index: absurd block count";
    return false;
  }
  // Reserve conservatively: a corrupt header may declare a huge count that
  // must fail as "corrupt" (entries run out of file bytes), never as an
  // attempted terabyte allocation.
  out.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(blocks, 1u << 16)));
  std::uint64_t offset = 0;
  for (std::uint64_t i = 0; i < blocks; ++i) {
    std::uint64_t delta = 0, core = 0, count = 0;
    if (read_varint(in, delta) != VarintResult::kOk || read_varint(in, core) != VarintResult::kOk ||
        read_varint(in, count) != VarintResult::kOk) {
      message = "truncated block index";
      return false;
    }
    offset = i == 0 ? delta : offset + delta;
    if (i > 0 && delta == 0) {
      message = "corrupt block index: offsets not increasing";
      return false;
    }
    if (core >= kMaxCores || count == 0 || count > TraceWriter::kMaxBlockSamples) {
      message = "corrupt block index entry";
      return false;
    }
    out.push_back(BlockIndexEntry{offset, static_cast<CoreId>(core),
                                  static_cast<std::uint32_t>(count)});
  }
  return true;
}

/// Parses the metadata entries following a consumed kMetaMarker byte,
/// holding each one to the structural invariants the writer guarantees:
/// one entry per index block, per-level counts partitioning exactly the
/// block's sample count, bounds that do not overflow, a non-empty region
/// bitmap.  Whether the summaries describe the *decoded* samples is the
/// full read's cross-check, not this parser's.
bool parse_meta_entries(std::ifstream& in, const std::vector<BlockIndexEntry>& index,
                        std::vector<BlockMeta>& out, std::string& message) {
  out.clear();
  std::uint64_t blocks = 0;
  if (read_varint(in, blocks) != VarintResult::kOk) {
    message = "truncated index metadata";
    return false;
  }
  if (blocks != index.size()) {
    message = "corrupt index metadata: block count disagrees with the index";
    return false;
  }
  out.reserve(index.size());
  for (std::uint64_t i = 0; i < blocks; ++i) {
    BlockMeta m;
    std::uint64_t time_span = 0, addr_span = 0;
    if (read_varint(in, m.min_time) != VarintResult::kOk ||
        read_varint(in, time_span) != VarintResult::kOk ||
        read_varint(in, m.min_addr) != VarintResult::kOk ||
        read_varint(in, addr_span) != VarintResult::kOk) {
      message = "truncated index metadata";
      return false;
    }
    if (time_span > std::numeric_limits<std::uint64_t>::max() - m.min_time ||
        addr_span > std::numeric_limits<Addr>::max() - m.min_addr) {
      message = "corrupt index metadata: bounds overflow";
      return false;
    }
    m.max_time = m.min_time + time_span;
    m.max_addr = m.min_addr + addr_span;
    std::uint64_t total = 0;
    for (std::size_t l = 0; l < kNumMemLevels; ++l) {
      if (read_varint(in, m.level_samples[l]) != VarintResult::kOk) {
        message = "truncated index metadata";
        return false;
      }
      if (m.level_samples[l] > index[i].samples) {
        message = "corrupt index metadata: level count exceeds the block's samples";
        return false;
      }
      total += m.level_samples[l];
    }
    if (total != index[i].samples) {
      message = "corrupt index metadata: level counts do not sum to the block's samples";
      return false;
    }
    if (read_varint(in, m.region_bits) != VarintResult::kOk) {
      message = "truncated index metadata";
      return false;
    }
    // Every block holds at least one sample and every sample sets a bit.
    if (m.region_bits == 0) {
      message = "corrupt index metadata: empty region bitmap";
      return false;
    }
    out.push_back(m);
  }
  return true;
}

/// Loads a v2 trace's index + footer from the end of the file (header must
/// already be validated).  Validates the footer magic/marker, the index
/// location and every structural invariant tying the two together.  `meta`
/// is filled when the optional metadata section is present (and left empty
/// for files that predate it).
bool load_index_from_end(std::ifstream& in, TraceFileInfo& info,
                         std::vector<BlockIndexEntry>& index, std::vector<BlockMeta>& meta,
                         std::string& message) {
  in.clear();
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::uint64_t>(in.tellg());
  // Minimum v2 file: header + empty index (marker + zero count) + footer.
  if (size < kHeaderBytes + 2 + kFooterV2Bytes) {
    message = "truncated footer";
    return false;
  }
  const std::uint64_t footer_at = size - kFooterV2Bytes;
  in.seekg(static_cast<std::streamoff>(footer_at));
  if (in.get() != kFooterMarker) {
    message = "bad footer marker";
    return false;
  }
  std::uint64_t declared = 0;
  std::array<std::uint8_t, 16> digest{};
  std::uint64_t index_offset = 0, end_magic = 0;
  if (!read_fixed(in, declared, 8) || !read_raw(in, digest.data(), digest.size()) ||
      !read_fixed(in, index_offset, 8) || !read_fixed(in, end_magic, 4)) {
    message = "truncated footer";
    return false;
  }
  if (end_magic != kTraceEndMagic) {
    message = "bad end magic";
    return false;
  }
  if (index_offset < kHeaderBytes || index_offset + 1 > footer_at) {
    message = "corrupt footer: index offset out of range";
    return false;
  }
  in.seekg(static_cast<std::streamoff>(index_offset));
  if (in.get() != kIndexMarker) {
    message = "corrupt footer: index offset does not point at a block index";
    return false;
  }
  if (!parse_index_entries(in, index, message)) return false;
  meta.clear();
  if (static_cast<std::uint64_t>(in.tellg()) != footer_at) {
    // Only the optional metadata section may sit between index and footer.
    if (in.get() != kMetaMarker) {
      message = "corrupt block index: index does not end at the footer";
      return false;
    }
    if (!parse_meta_entries(in, index, meta, message)) return false;
    if (static_cast<std::uint64_t>(in.tellg()) != footer_at) {
      message = "corrupt index metadata: section does not end at the footer";
      return false;
    }
  }
  std::uint64_t total = 0;
  for (const auto& entry : index) {
    if (entry.offset < kHeaderBytes || entry.offset >= index_offset) {
      message = "corrupt block index: block offset out of range";
      return false;
    }
    // Each indexed offset must land on an actual block marker - a one-byte
    // read per block keeps the check O(blocks) while catching blocks whose
    // framing was stomped (the full read rejects those too, and probe and
    // read must agree).
    in.seekg(static_cast<std::streamoff>(entry.offset));
    if (in.get() != kBlockMarker) {
      message = "corrupt block index: entry does not point at a block marker";
      return false;
    }
    total += entry.samples;
  }
  if (total != declared) {
    message = "corrupt block index: sample counts disagree with the footer";
    return false;
  }
  info.samples = declared;
  info.fingerprint = Md5::to_hex(digest);
  return true;
}

/// Walks a v1 file's blocks structurally - varint well-formedness and block
/// framing only, no delta/digest work - and validates the footer the walk
/// lands on, including the trailing-bytes check a full read performs.  This
/// is O(file): v1 blocks carry no length, which is exactly why v2 exists.
std::optional<TraceFileInfo> probe_v1(std::ifstream& in) {
  std::uint64_t total = 0;
  for (;;) {
    const int marker = in.get();
    if (marker == std::ifstream::traits_type::eof()) return std::nullopt;
    if (marker == kFooterMarker) break;
    if (marker != kBlockMarker) return std::nullopt;
    std::uint64_t core = 0, count = 0;
    if (read_varint(in, core) != VarintResult::kOk ||
        read_varint(in, count) != VarintResult::kOk) {
      return std::nullopt;
    }
    if (core >= kMaxCores || count == 0 || count > TraceWriter::kMaxBlockSamples) {
      return std::nullopt;
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint64_t skip = 0;
      if (read_varint(in, skip) != VarintResult::kOk ||
          read_varint(in, skip) != VarintResult::kOk ||
          read_varint(in, skip) != VarintResult::kOk) {
        return std::nullopt;
      }
      if (in.get() == std::ifstream::traits_type::eof()) return std::nullopt;  // op/level
      if (read_varint(in, skip) != VarintResult::kOk ||
          read_varint(in, skip) != VarintResult::kOk) {
        return std::nullopt;
      }
    }
    total += count;
  }
  TraceFileInfo info;
  info.version = kTraceVersion1;
  std::array<std::uint8_t, 16> digest{};
  std::uint64_t end_magic = 0;
  if (!read_fixed(in, info.samples, 8) || !read_raw(in, digest.data(), digest.size()) ||
      !read_fixed(in, end_magic, 4) || end_magic != kTraceEndMagic) {
    return std::nullopt;
  }
  // The same end-of-stream checks read_footer makes: the footer the block
  // walk found must be the last bytes of the file, and its count must match
  // the blocks - appended garbage or a stale duplicated footer fails the
  // probe exactly as it fails a full read.
  if (in.peek() != std::ifstream::traits_type::eof()) return std::nullopt;
  if (info.samples != total) return std::nullopt;
  info.fingerprint = Md5::to_hex(digest);
  return info;
}

}  // namespace

// --- TraceWriter ------------------------------------------------------------

TraceWriter::TraceWriter(const std::string& path) : TraceWriter(path, Options()) {}

TraceWriter::TraceWriter(const std::string& path, Options options)
    : out_(path, std::ios::binary | std::ios::trunc), options_(options) {
  if (!out_) {
    error_ = "cannot open " + path + " for writing";
    closed_ = true;
    return;
  }
  if (options_.version != kTraceVersion1 && options_.version != kTraceVersion2) {
    error_ = "unsupported trace version " + std::to_string(options_.version);
    closed_ = true;
    return;
  }
  std::vector<std::byte> header;
  put_bytes(header, kTraceMagic, 4);
  put_bytes(header, options_.version, 2);
  put_bytes(header, 0, 2);  // reserved
  write_raw(out_, header.data(), header.size());
  write_offset_ = header.size();
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::add(const core::TraceSample& s) {
  if (closed_) {
    // Make misuse loud: without an error the caller's ok()/close() signals
    // would still report success while samples silently vanish.
    if (error_.empty()) error_ = "add after close";
    return;
  }
  if (!ok()) return;
  if (s.core >= kMaxCores) {
    error_ = "core id " + std::to_string(s.core) + " exceeds the format limit";
    return;
  }
  if (s.region < -1) {
    // The reader enforces region >= -1; accepting such a sample here would
    // produce a file our own reader rejects as corrupt.
    error_ = "region id " + std::to_string(s.region) + " is below the format's -1 floor";
    return;
  }
  if (options_.version == kTraceVersion1) {
    // v1 blocks hold one core: flush on a core switch (or a full block).
    if (block_count_ > 0 && (s.core != block_core_ || block_count_ >= kMaxBlockSamples)) {
      flush_block();
    }
    if (block_count_ == 0) block_core_ = s.core;
  } else {
    // v2 blocks interleave cores freely; only fullness closes one.
    if (block_count_ >= kMaxBlockSamples) flush_block();
    std::size_t slot = 0;
    while (slot < block_cores_.size() && block_cores_[slot].core != s.core) ++slot;
    if (slot == block_cores_.size()) {
      // First appearance in this block: snapshot the core's predictor as
      // its delta base, written into the block header so the block decodes
      // alone.
      block_cores_.push_back(
          detail::BlockCoreBase{s.core, predictor_for(predictors_, s.core)});
    }
    put_varint(block_, slot);
  }

  auto& pred = predictor_for(predictors_, s.core);
  put_varint(block_, delta_of(s.time_ns, pred.time_ns));
  put_varint(block_, delta_of(s.vaddr, pred.vaddr));
  put_varint(block_, delta_of(s.pc, pred.pc));
  block_.push_back(static_cast<std::byte>((static_cast<unsigned>(s.op) << 4) |
                                          static_cast<unsigned>(s.level)));
  put_varint(block_, s.latency);
  put_varint(block_, zigzag(s.region));
  pred.time_ns = s.time_ns;
  pred.vaddr = s.vaddr;
  pred.pc = s.pc;

  core::fingerprint_update(md5_, s);
  if (options_.version == kTraceVersion2) block_meta_.absorb(s);
  ++count_;
  ++block_count_;
}

void TraceWriter::write_all(const core::SampleTrace& trace) {
  for (const auto& s : trace.samples()) add(s);
}

void TraceWriter::flush_block() {
  if (block_count_ == 0) return;
  std::vector<std::byte> head;
  head.push_back(static_cast<std::byte>(kBlockMarker));
  if (options_.version == kTraceVersion1) {
    put_varint(head, block_core_);
    put_varint(head, block_count_);
    write_raw(out_, head.data(), head.size());
    write_raw(out_, block_.data(), block_.size());
    write_offset_ += head.size() + block_.size();
    block_.clear();
    block_count_ = 0;
    return;
  }

  const std::byte* payload = block_.data();
  std::size_t payload_size = block_.size();
  std::vector<std::byte> packed;
  auto codec = BlockCodec::kRaw;
  if (options_.compress) {
    packed = lz_compress(block_.data(), block_.size());
    // Store compressed only when it actually shrinks the block, so the
    // codec can never grow a file (incompressible payloads stay raw).
    if (packed.size() < block_.size()) {
      codec = BlockCodec::kLz;
      payload = packed.data();
      payload_size = packed.size();
    }
  }
  put_varint(head, block_count_);
  head.push_back(static_cast<std::byte>(codec));
  put_varint(head, block_cores_.size());
  for (const auto& entry : block_cores_) {
    put_varint(head, entry.core);
    put_varint(head, entry.base.time_ns);
    put_varint(head, entry.base.vaddr);
    put_varint(head, entry.base.pc);
  }
  put_varint(head, block_.size());
  put_varint(head, payload_size);
  index_.push_back(BlockIndexEntry{write_offset_, block_cores_.front().core, block_count_});
  meta_.push_back(block_meta_);
  block_meta_ = BlockMeta{};
  if (observer_) {
    // The tee must see the very bytes the file gets: one contiguous span of
    // marker + header + payload, written to disk from the same buffer so
    // the two can never diverge.
    observed_.clear();
    observed_.insert(observed_.end(), head.begin(), head.end());
    observed_.insert(observed_.end(), payload, payload + payload_size);
    write_raw(out_, observed_.data(), observed_.size());
    observer_(std::span<const std::byte>(observed_.data(), observed_.size()), block_count_,
              block_cores_.front().core);
  } else {
    write_raw(out_, head.data(), head.size());
    write_raw(out_, payload, payload_size);
  }
  write_offset_ += head.size() + payload_size;
  block_.clear();
  block_cores_.clear();
  block_count_ = 0;
}

bool TraceWriter::close() {
  if (closed_) return ok();
  if (!ok()) {
    // A sticky add() error means samples were dropped; withholding the
    // footer keeps the partial file rejectable instead of letting it
    // validate as a complete (but silently truncated) trace.
    abandon();
    return false;
  }
  closed_ = true;
  flush_block();

  std::uint64_t index_offset = 0;
  if (options_.version == kTraceVersion2) {
    index_offset = write_offset_;
    std::vector<std::byte> section;
    section.push_back(static_cast<std::byte>(kIndexMarker));
    put_varint(section, index_.size());
    std::uint64_t prev = 0;
    for (const auto& entry : index_) {
      // Offsets are strictly increasing; deltas keep the entries tiny.
      put_varint(section, entry.offset - prev);
      prev = entry.offset;
      put_varint(section, entry.core);
      put_varint(section, entry.samples);
    }
    write_raw(out_, section.data(), section.size());
    write_offset_ += section.size();

    if (options_.index_meta) {
      // The metadata section rides between the index and the footer; the
      // footer's index offset still names the index marker, so readers that
      // predate the section never see it and the footer layout is untouched.
      std::vector<std::byte> meta;
      meta.push_back(static_cast<std::byte>(kMetaMarker));
      put_varint(meta, meta_.size());
      for (const auto& m : meta_) {
        put_varint(meta, m.min_time);
        put_varint(meta, m.max_time - m.min_time);
        put_varint(meta, m.min_addr);
        put_varint(meta, m.max_addr - m.min_addr);
        for (std::size_t l = 0; l < kNumMemLevels; ++l) put_varint(meta, m.level_samples[l]);
        put_varint(meta, m.region_bits);
      }
      write_raw(out_, meta.data(), meta.size());
      write_offset_ += meta.size();
    }
  }

  const auto digest = md5_.digest();
  fingerprint_ = Md5::to_hex(digest);
  std::vector<std::byte> footer;
  footer.push_back(static_cast<std::byte>(kFooterMarker));
  put_bytes(footer, count_, 8);
  for (const std::uint8_t b : digest) footer.push_back(static_cast<std::byte>(b));
  if (options_.version == kTraceVersion2) put_bytes(footer, index_offset, 8);
  put_bytes(footer, kTraceEndMagic, 4);
  write_raw(out_, footer.data(), footer.size());
  out_.flush();
  if (!out_) error_ = "write failed";
  out_.close();
  return ok();
}

void TraceWriter::abandon() {
  if (closed_) return;
  closed_ = true;
  out_.close();
  if (error_.empty()) error_ = "abandoned before close";
}

// --- TraceReader ------------------------------------------------------------

TraceReader::TraceReader(const std::string& path) : in_(path, std::ios::binary) {
  if (!in_) {
    fail("cannot open " + path);
    return;
  }
  std::uint64_t magic = 0, version = 0, reserved = 0;
  if (!read_fixed(in_, magic, 4) || !read_fixed(in_, version, 2) ||
      !read_fixed(in_, reserved, 2)) {
    fail("truncated header");
    return;
  }
  if (magic != kTraceMagic) {
    fail("bad magic: not an nmo trace file");
    return;
  }
  if (version != kTraceVersion1 && version != kTraceVersion2) {
    fail("unsupported trace version " + std::to_string(version));
    return;
  }
  info_.version = static_cast<std::uint16_t>(version);
}

void TraceReader::fail(std::string message) {
  error_ = std::move(message);
  done_ = true;
}

bool TraceReader::read_footer(std::uint64_t index_offset_seen) {
  std::uint64_t declared = 0;
  if (!read_fixed(in_, declared, 8)) {
    fail("truncated footer");
    return false;
  }
  std::array<std::uint8_t, 16> stored{};
  if (!read_raw(in_, stored.data(), stored.size())) {
    fail("truncated footer");
    return false;
  }
  if (info_.version == kTraceVersion2) {
    std::uint64_t index_offset = 0;
    if (!read_fixed(in_, index_offset, 8)) {
      fail("truncated footer");
      return false;
    }
    if (index_offset != index_offset_seen) {
      fail("corrupt footer: index offset does not match the index position");
      return false;
    }
  }
  std::uint64_t end_magic = 0;
  if (!read_fixed(in_, end_magic, 4) || end_magic != kTraceEndMagic) {
    fail("bad end magic");
    return false;
  }
  if (in_.peek() != std::ifstream::traits_type::eof()) {
    fail("trailing bytes after footer");
    return false;
  }
  // In random-access mode (after seek_block) the stream decoded only a
  // suffix of the samples, so the whole-file count and digest cannot apply.
  if (!seeked_) {
    if (declared != count_) {
      fail("sample count mismatch: footer declares " + std::to_string(declared) + ", decoded " +
           std::to_string(count_));
      return false;
    }
    const auto digest = md5_.digest();
    if (digest != stored) {
      fail("fingerprint mismatch: trace is corrupt");
      return false;
    }
  }
  info_.samples = declared;
  info_.fingerprint = Md5::to_hex(stored);
  done_ = true;
  return true;
}

bool TraceReader::read_index_and_footer() {
  // The index marker byte is already consumed; its offset is one behind.
  const auto index_offset = static_cast<std::uint64_t>(in_.tellg()) - 1;
  std::vector<BlockIndexEntry> parsed;
  std::string message;
  if (!parse_index_entries(in_, parsed, message)) {
    fail(std::move(message));
    return false;
  }
  // The index must describe exactly the blocks the stream walked past - a
  // mismatch means either the blocks or the index were tampered with.  A
  // seeked reader only saw a suffix, so the check cannot apply.
  if (!seeked_ && !same_blocks(parsed, seen_blocks_)) {
    fail("block index mismatch: index does not describe the blocks on disk");
    return false;
  }
  index_ = std::move(parsed);
  index_loaded_ = true;
  int marker = in_.get();
  if (marker == kMetaMarker) {
    std::vector<BlockMeta> parsed_meta;
    if (!parse_meta_entries(in_, index_, parsed_meta, message)) {
      fail(std::move(message));
      return false;
    }
    // The summaries must describe the very samples the stream decoded - the
    // writer and this reader fold samples through the same absorb(), so any
    // disagreement means the metadata (or a block) was tampered with.  A
    // seeked reader decoded only a suffix and cannot make the comparison.
    if (!seeked_ && parsed_meta != seen_meta_) {
      fail("block index metadata disagrees with decoded block contents");
      return false;
    }
    meta_ = std::move(parsed_meta);
    marker = in_.get();
  }
  if (marker == std::ifstream::traits_type::eof()) {
    fail("truncated footer");
    return false;
  }
  if (marker != kFooterMarker) {
    fail("bad footer marker after block index");
    return false;
  }
  return read_footer(index_offset);
}

bool TraceReader::open_block(std::uint64_t marker_offset) {
  const auto header_varint = [&](std::uint64_t& v) {
    switch (read_varint(in_, v)) {
      case VarintResult::kOk:
        return true;
      case VarintResult::kEof:
        fail("truncated block header");
        return false;
      case VarintResult::kOverflow:
        fail("overlong varint in block header: value overflows 64 bits");
        return false;
    }
    return false;
  };

  if (info_.version == kTraceVersion1) {
    std::uint64_t core = 0, count = 0;
    if (!header_varint(core) || !header_varint(count)) return false;
    if (count == 0 || count > TraceWriter::kMaxBlockSamples || core >= kMaxCores) {
      fail("corrupt block header");
      return false;
    }
    block_core_ = static_cast<CoreId>(core);
    block_remaining_ = static_cast<std::uint32_t>(count);
    return true;
  }

  std::uint64_t count = 0;
  if (!header_varint(count)) return false;
  if (count == 0 || count > TraceWriter::kMaxBlockSamples) {
    fail("corrupt block header");
    return false;
  }
  const int codec_byte = in_.get();
  if (codec_byte == std::ifstream::traits_type::eof()) {
    fail("truncated block header");
    return false;
  }
  if (!is_known_codec(static_cast<std::uint8_t>(codec_byte))) {
    fail("unknown block codec " + std::to_string(codec_byte));
    return false;
  }
  const auto codec = static_cast<BlockCodec>(codec_byte);
  std::uint64_t cores = 0;
  if (!header_varint(cores)) return false;
  // Every listed core appears in the block at least once, so the table can
  // never be larger than the sample count.
  if (cores == 0 || cores > count) {
    fail("corrupt block header: core table size");
    return false;
  }
  block_cores_.clear();
  block_cores_.reserve(static_cast<std::size_t>(cores));
  for (std::uint64_t i = 0; i < cores; ++i) {
    std::uint64_t core = 0, base_time = 0, base_vaddr = 0, base_pc = 0;
    if (!header_varint(core) || !header_varint(base_time) || !header_varint(base_vaddr) ||
        !header_varint(base_pc)) {
      return false;
    }
    if (core >= kMaxCores) {
      fail("corrupt block header: core id out of range");
      return false;
    }
    detail::BlockCoreBase entry;
    entry.core = static_cast<CoreId>(core);
    entry.base.time_ns = base_time;
    entry.base.vaddr = base_vaddr;
    entry.base.pc = base_pc;
    block_cores_.push_back(entry);
  }
  std::uint64_t raw_bytes = 0, stored_bytes = 0;
  if (!header_varint(raw_bytes) || !header_varint(stored_bytes)) return false;
  if (raw_bytes == 0 || raw_bytes > kMaxBlockRawBytes) {
    fail("corrupt block header: implausible payload size");
    return false;
  }
  // A raw block stores its payload verbatim; a compressed one must shrink
  // (the writer falls back to raw otherwise), so anything else is corrupt.
  if (codec == BlockCodec::kRaw ? stored_bytes != raw_bytes : stored_bytes >= raw_bytes) {
    fail("corrupt block header: stored size inconsistent with codec");
    return false;
  }

  std::vector<std::byte> stored(static_cast<std::size_t>(stored_bytes));
  if (!read_raw(in_, stored.data(), stored.size())) {
    fail("truncated block payload");
    return false;
  }
  if (codec == BlockCodec::kLz) {
    block_buf_.resize(static_cast<std::size_t>(raw_bytes));
    if (!lz_decompress(stored.data(), stored.size(), block_buf_.data(), block_buf_.size())) {
      fail("corrupt block payload: decompression failed");
      return false;
    }
  } else {
    block_buf_ = std::move(stored);
  }
  block_pos_ = 0;
  block_remaining_ = static_cast<std::uint32_t>(count);
  seen_blocks_.push_back(BlockIndexEntry{marker_offset, block_cores_.front().core,
                                         static_cast<std::uint32_t>(count)});
  if (!seeked_) seen_meta_.push_back(BlockMeta{});
  return true;
}

bool TraceReader::decode_sample(core::TraceSample& out) {
  const bool v1 = info_.version == kTraceVersion1;
  const auto take_varint = [&](std::uint64_t& v) {
    const auto r = v1 ? read_varint(in_, v) : read_varint(block_buf_, block_pos_, v);
    switch (r) {
      case VarintResult::kOk:
        return true;
      case VarintResult::kEof:
        fail("truncated sample");
        return false;
      case VarintResult::kOverflow:
        fail("overlong varint in sample: value overflows 64 bits");
        return false;
    }
    return false;
  };
  const auto take_byte = [&](std::uint64_t& v) {
    if (v1) {
      const int c = in_.get();
      if (c == std::ifstream::traits_type::eof()) {
        fail("truncated sample");
        return false;
      }
      v = static_cast<std::uint64_t>(c);
      return true;
    }
    if (block_pos_ >= block_buf_.size()) {
      fail("truncated sample");
      return false;
    }
    v = std::to_integer<std::uint64_t>(block_buf_[block_pos_++]);
    return true;
  };

  std::size_t slot = 0;
  if (!v1) {
    std::uint64_t slot_value = 0;
    if (!take_varint(slot_value)) return false;
    if (slot_value >= block_cores_.size()) {
      fail("corrupt sample encoding: core slot out of range");
      return false;
    }
    slot = static_cast<std::size_t>(slot_value);
  }
  std::uint64_t dt = 0, dvaddr = 0, dpc = 0, packed = 0, latency = 0, region = 0;
  if (!take_varint(dt) || !take_varint(dvaddr) || !take_varint(dpc) || !take_byte(packed) ||
      !take_varint(latency) || !take_varint(region)) {
    return false;
  }
  const unsigned op = static_cast<unsigned>(packed) >> 4;
  const unsigned level = static_cast<unsigned>(packed) & 0xf;
  if (op > 1 || level >= kNumMemLevels || latency > 0xffff) {
    fail("corrupt sample encoding");
    return false;
  }
  // The region index is an int32 (-1 = untagged); a wider decoded value
  // would alias into a valid-looking id through the cast.
  const std::int64_t region_value = unzigzag(region);
  if (region_value < -1 || region_value > std::numeric_limits<std::int32_t>::max()) {
    fail("corrupt sample encoding: region " + std::to_string(region_value) + " out of range");
    return false;
  }

  detail::CorePredictor& pred =
      v1 ? predictor_for(predictors_, block_core_) : block_cores_[slot].base;
  out.time_ns = apply_delta(pred.time_ns, dt);
  out.vaddr = apply_delta(pred.vaddr, dvaddr);
  out.pc = apply_delta(pred.pc, dpc);
  out.op = static_cast<MemOp>(op);
  out.level = static_cast<MemLevel>(level);
  out.latency = static_cast<std::uint16_t>(latency);
  out.core = v1 ? block_core_ : block_cores_[slot].core;
  out.region = static_cast<std::int32_t>(region_value);
  pred.time_ns = out.time_ns;
  pred.vaddr = out.vaddr;
  pred.pc = out.pc;

  // In random-access mode the footer digest is never checked (the stream
  // saw only a suffix), so hashing would just tax every parallel-decode
  // worker for bytes the reassembly step re-hashes anyway.  The same goes
  // for the rebuilt per-block summaries the metadata cross-check consumes.
  if (!seeked_) {
    core::fingerprint_update(md5_, out);
    if (info_.version == kTraceVersion2) seen_meta_.back().absorb(out);
  }
  ++count_;
  --block_remaining_;
  if (info_.version == kTraceVersion2 && block_remaining_ == 0 &&
      block_pos_ != block_buf_.size()) {
    fail("corrupt block: payload bytes left after the last sample");
    return false;
  }
  return true;
}

bool TraceReader::next(core::TraceSample& out) {
  if (done_ || !ok()) return false;
  if (block_remaining_ == 0) {
    const auto marker_offset = static_cast<std::uint64_t>(in_.tellg());
    const int marker = in_.get();
    if (marker == std::ifstream::traits_type::eof()) {
      fail("truncated: missing footer");
      return false;
    }
    if (marker == kFooterMarker) {
      if (info_.version == kTraceVersion2) {
        // v2 always carries an index between the blocks and the footer.
        fail("missing block index before footer");
        return false;
      }
      read_footer(0);
      return false;
    }
    if (marker == kIndexMarker && info_.version == kTraceVersion2) {
      read_index_and_footer();
      return false;
    }
    if (marker != kBlockMarker) {
      fail("corrupt block marker");
      return false;
    }
    if (!open_block(marker_offset)) return false;
  }
  return decode_sample(out);
}

core::SampleTrace TraceReader::read_all() {
  core::SampleTrace trace;
  core::TraceSample s;
  while (next(s)) trace.add(s);
  if (!ok()) trace.clear();
  return trace;
}

bool TraceReader::load_index() {
  if (!ok()) return false;
  if (info_.version != kTraceVersion2) return false;  // v1 has no index
  if (index_loaded_) return true;
  const auto resume_at = in_.tellg();
  std::string message;
  if (!load_index_from_end(in_, info_, index_, meta_, message)) {
    fail(std::move(message));
    return false;
  }
  index_loaded_ = true;
  in_.clear();
  in_.seekg(resume_at);
  return true;
}

bool TraceReader::seek_block(std::size_t block) {
  if (!ok()) return false;
  if (info_.version != kTraceVersion2) return false;  // v1 blocks are not self-contained
  if (!index_loaded_ && !load_index()) return false;
  if (block >= index_.size()) return false;
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(index_[block].offset));
  done_ = false;
  seeked_ = true;
  block_remaining_ = 0;
  block_buf_.clear();
  block_pos_ = 0;
  block_cores_.clear();
  seen_blocks_.clear();
  seen_meta_.clear();
  return true;
}

std::optional<TraceFileInfo> TraceReader::probe(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::uint64_t magic = 0, version = 0, reserved = 0;
  if (!read_fixed(in, magic, 4) || !read_fixed(in, version, 2) || !read_fixed(in, reserved, 2) ||
      magic != kTraceMagic) {
    return std::nullopt;
  }
  if (version == kTraceVersion1) return probe_v1(in);
  if (version != kTraceVersion2) return std::nullopt;
  TraceFileInfo info;
  info.version = static_cast<std::uint16_t>(version);
  std::vector<BlockIndexEntry> index;
  std::vector<BlockMeta> meta;
  std::string message;
  if (!load_index_from_end(in, info, index, meta, message)) return std::nullopt;
  return info;
}

// read_all_parallel() lives in trace_query.cpp: it is a thin legacy wrapper
// over TraceQuery, which owns the block partitioning and worker logic now.

bool decode_v2_block(std::span<const std::byte> block, std::vector<core::TraceSample>& out,
                     std::string* error) {
  const auto fail = [&](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };
  std::size_t pos = 0;
  const auto take_varint = [&](std::uint64_t& v, const char* where) {
    switch (read_varint(block, pos, v)) {
      case VarintResult::kOk:
        return true;
      case VarintResult::kEof:
        fail(std::string("truncated ") + where);
        return false;
      case VarintResult::kOverflow:
        fail(std::string("overlong varint in ") + where + ": value overflows 64 bits");
        return false;
    }
    return false;
  };

  if (block.empty() || std::to_integer<std::uint8_t>(block[0]) != kBlockMarker) {
    return fail("corrupt block marker");
  }
  pos = 1;
  std::uint64_t count = 0;
  if (!take_varint(count, "block header")) return false;
  if (count == 0 || count > TraceWriter::kMaxBlockSamples) return fail("corrupt block header");
  if (pos >= block.size()) return fail("truncated block header");
  const auto codec_byte = std::to_integer<std::uint8_t>(block[pos++]);
  if (!is_known_codec(codec_byte)) {
    return fail("unknown block codec " + std::to_string(codec_byte));
  }
  const auto codec = static_cast<BlockCodec>(codec_byte);
  std::uint64_t cores = 0;
  if (!take_varint(cores, "block header")) return false;
  if (cores == 0 || cores > count) return fail("corrupt block header: core table size");
  std::vector<detail::BlockCoreBase> bases;
  bases.reserve(static_cast<std::size_t>(cores));
  for (std::uint64_t i = 0; i < cores; ++i) {
    std::uint64_t core = 0, base_time = 0, base_vaddr = 0, base_pc = 0;
    if (!take_varint(core, "block header") || !take_varint(base_time, "block header") ||
        !take_varint(base_vaddr, "block header") || !take_varint(base_pc, "block header")) {
      return false;
    }
    if (core >= kMaxCores) return fail("corrupt block header: core id out of range");
    detail::BlockCoreBase entry;
    entry.core = static_cast<CoreId>(core);
    entry.base.time_ns = base_time;
    entry.base.vaddr = base_vaddr;
    entry.base.pc = base_pc;
    bases.push_back(entry);
  }
  std::uint64_t raw_bytes = 0, stored_bytes = 0;
  if (!take_varint(raw_bytes, "block header") || !take_varint(stored_bytes, "block header")) {
    return false;
  }
  if (raw_bytes == 0 || raw_bytes > kMaxBlockRawBytes) {
    return fail("corrupt block header: implausible payload size");
  }
  if (codec == BlockCodec::kRaw ? stored_bytes != raw_bytes : stored_bytes >= raw_bytes) {
    return fail("corrupt block header: stored size inconsistent with codec");
  }
  if (stored_bytes > block.size() - pos) return fail("truncated block payload");
  const std::span<const std::byte> stored = block.subspan(pos, stored_bytes);
  pos += stored_bytes;
  if (pos != block.size()) return fail("corrupt block: trailing bytes after the payload");

  std::vector<std::byte> unpacked;
  std::span<const std::byte> payload = stored;
  if (codec == BlockCodec::kLz) {
    unpacked.resize(static_cast<std::size_t>(raw_bytes));
    if (!lz_decompress(stored.data(), stored.size(), unpacked.data(), unpacked.size())) {
      return fail("corrupt block payload: decompression failed");
    }
    payload = unpacked;
  }

  std::vector<core::TraceSample> decoded;
  decoded.reserve(static_cast<std::size_t>(count));
  std::size_t sample_pos = 0;
  const auto sample_varint = [&](std::uint64_t& v) {
    switch (read_varint(payload, sample_pos, v)) {
      case VarintResult::kOk:
        return true;
      case VarintResult::kEof:
        fail("truncated sample");
        return false;
      case VarintResult::kOverflow:
        fail("overlong varint in sample: value overflows 64 bits");
        return false;
    }
    return false;
  };
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t slot = 0;
    if (!sample_varint(slot)) return false;
    if (slot >= bases.size()) return fail("corrupt sample encoding: core slot out of range");
    std::uint64_t dt = 0, dvaddr = 0, dpc = 0, latency = 0, region = 0;
    if (!sample_varint(dt) || !sample_varint(dvaddr) || !sample_varint(dpc)) return false;
    if (sample_pos >= payload.size()) return fail("truncated sample");
    const auto packed = std::to_integer<std::uint64_t>(payload[sample_pos++]);
    if (!sample_varint(latency) || !sample_varint(region)) return false;
    const unsigned op = static_cast<unsigned>(packed) >> 4;
    const unsigned level = static_cast<unsigned>(packed) & 0xf;
    if (op > 1 || level >= kNumMemLevels || latency > 0xffff) {
      return fail("corrupt sample encoding");
    }
    const std::int64_t region_value = unzigzag(region);
    if (region_value < -1 || region_value > std::numeric_limits<std::int32_t>::max()) {
      return fail("corrupt sample encoding: region " + std::to_string(region_value) +
                  " out of range");
    }
    detail::CorePredictor& pred = bases[slot].base;
    core::TraceSample s;
    s.time_ns = apply_delta(pred.time_ns, dt);
    s.vaddr = apply_delta(pred.vaddr, dvaddr);
    s.pc = apply_delta(pred.pc, dpc);
    s.op = static_cast<MemOp>(op);
    s.level = static_cast<MemLevel>(level);
    s.latency = static_cast<std::uint16_t>(latency);
    s.core = bases[slot].core;
    s.region = static_cast<std::int32_t>(region_value);
    pred.time_ns = s.time_ns;
    pred.vaddr = s.vaddr;
    pred.pc = s.pc;
    decoded.push_back(s);
  }
  if (sample_pos != payload.size()) {
    return fail("corrupt block: payload bytes left after the last sample");
  }
  out.insert(out.end(), decoded.begin(), decoded.end());
  return true;
}

}  // namespace nmo::store
