#include "store/trace_file.hpp"

#include <array>
#include <cstddef>

namespace nmo::store {
namespace {

// --- little-endian fixed-width + LEB128 varint codec ------------------------

void put_bytes(std::vector<std::byte>& out, std::uint64_t v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<std::byte>(v & 0xff));
    v >>= 8;
  }
}

void put_varint(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

/// Signed delta between two u64 counters (wrap-around safe).
std::uint64_t delta_of(std::uint64_t value, std::uint64_t base) {
  return zigzag(static_cast<std::int64_t>(value - base));
}

std::uint64_t apply_delta(std::uint64_t base, std::uint64_t encoded) {
  return base + static_cast<std::uint64_t>(unzigzag(encoded));
}

void write_raw(std::ofstream& out, const void* data, std::size_t n) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
}

bool read_raw(std::ifstream& in, void* data, std::size_t n) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  return static_cast<std::size_t>(in.gcount()) == n;
}

bool read_fixed(std::ifstream& in, std::uint64_t& v, std::size_t n) {
  std::array<unsigned char, 8> buf{};
  if (!read_raw(in, buf.data(), n)) return false;
  v = 0;
  for (std::size_t i = 0; i < n; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return true;
}

bool read_varint(std::ifstream& in, std::uint64_t& v) {
  v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    const int c = in.get();
    if (c == std::ifstream::traits_type::eof()) return false;
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) return true;
  }
  return false;  // over-long varint: corrupt
}

/// `core` must already be validated against kMaxCores.
detail::CorePredictor& predictor_for(std::vector<detail::CorePredictor>& predictors,
                                     CoreId core) {
  if (core >= predictors.size()) predictors.resize(static_cast<std::size_t>(core) + 1);
  return predictors[core];
}

/// Fixed footer size: marker + u64 count + 16-byte MD5 + end magic.
constexpr std::size_t kFooterBytes = 1 + 8 + 16 + 4;
constexpr std::size_t kHeaderBytes = 4 + 2 + 2;

}  // namespace

// --- TraceWriter ------------------------------------------------------------

TraceWriter::TraceWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    error_ = "cannot open " + path + " for writing";
    closed_ = true;
    return;
  }
  std::vector<std::byte> header;
  put_bytes(header, kTraceMagic, 4);
  put_bytes(header, kTraceVersion, 2);
  put_bytes(header, 0, 2);  // reserved
  write_raw(out_, header.data(), header.size());
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::add(const core::TraceSample& s) {
  if (closed_) {
    // Make misuse loud: without an error the caller's ok()/close() signals
    // would still report success while samples silently vanish.
    if (error_.empty()) error_ = "add after close";
    return;
  }
  if (!ok()) return;
  if (s.core >= kMaxCores) {
    error_ = "core id " + std::to_string(s.core) + " exceeds the format limit";
    return;
  }
  if (block_count_ > 0 && (s.core != block_core_ || block_count_ >= kMaxBlockSamples)) {
    flush_block();
  }
  if (block_count_ == 0) block_core_ = s.core;

  auto& pred = predictor_for(predictors_, s.core);
  put_varint(block_, delta_of(s.time_ns, pred.time_ns));
  put_varint(block_, delta_of(s.vaddr, pred.vaddr));
  put_varint(block_, delta_of(s.pc, pred.pc));
  block_.push_back(static_cast<std::byte>((static_cast<unsigned>(s.op) << 4) |
                                          static_cast<unsigned>(s.level)));
  put_varint(block_, s.latency);
  put_varint(block_, zigzag(s.region));
  pred.time_ns = s.time_ns;
  pred.vaddr = s.vaddr;
  pred.pc = s.pc;

  core::fingerprint_update(md5_, s);
  ++count_;
  ++block_count_;
}

void TraceWriter::write_all(const core::SampleTrace& trace) {
  for (const auto& s : trace.samples()) add(s);
}

void TraceWriter::flush_block() {
  if (block_count_ == 0) return;
  std::vector<std::byte> head;
  head.push_back(static_cast<std::byte>(kBlockMarker));
  put_varint(head, block_core_);
  put_varint(head, block_count_);
  write_raw(out_, head.data(), head.size());
  write_raw(out_, block_.data(), block_.size());
  block_.clear();
  block_count_ = 0;
}

bool TraceWriter::close() {
  if (closed_) return ok();
  if (!ok()) {
    // A sticky add() error means samples were dropped; withholding the
    // footer keeps the partial file rejectable instead of letting it
    // validate as a complete (but silently truncated) trace.
    abandon();
    return false;
  }
  closed_ = true;
  flush_block();

  const auto digest = md5_.digest();
  fingerprint_ = Md5::to_hex(digest);
  std::vector<std::byte> footer;
  footer.push_back(static_cast<std::byte>(kFooterMarker));
  put_bytes(footer, count_, 8);
  for (const std::uint8_t b : digest) footer.push_back(static_cast<std::byte>(b));
  put_bytes(footer, kTraceEndMagic, 4);
  write_raw(out_, footer.data(), footer.size());
  out_.flush();
  if (!out_) error_ = "write failed";
  out_.close();
  return ok();
}

void TraceWriter::abandon() {
  if (closed_) return;
  closed_ = true;
  out_.close();
  if (error_.empty()) error_ = "abandoned before close";
}

// --- TraceReader ------------------------------------------------------------

TraceReader::TraceReader(const std::string& path) : in_(path, std::ios::binary) {
  if (!in_) {
    fail("cannot open " + path);
    return;
  }
  std::uint64_t magic = 0, version = 0, reserved = 0;
  if (!read_fixed(in_, magic, 4) || !read_fixed(in_, version, 2) ||
      !read_fixed(in_, reserved, 2)) {
    fail("truncated header");
    return;
  }
  if (magic != kTraceMagic) {
    fail("bad magic: not an nmo trace file");
    return;
  }
  if (version != kTraceVersion) {
    fail("unsupported trace version " + std::to_string(version));
    return;
  }
  info_.version = static_cast<std::uint16_t>(version);
}

void TraceReader::fail(std::string message) {
  error_ = std::move(message);
  done_ = true;
}

bool TraceReader::read_footer() {
  std::uint64_t declared = 0;
  if (!read_fixed(in_, declared, 8)) {
    fail("truncated footer");
    return false;
  }
  std::array<std::uint8_t, 16> stored{};
  if (!read_raw(in_, stored.data(), stored.size())) {
    fail("truncated footer");
    return false;
  }
  std::uint64_t end_magic = 0;
  if (!read_fixed(in_, end_magic, 4) || end_magic != kTraceEndMagic) {
    fail("bad end magic");
    return false;
  }
  if (in_.peek() != std::ifstream::traits_type::eof()) {
    fail("trailing bytes after footer");
    return false;
  }
  if (declared != count_) {
    fail("sample count mismatch: footer declares " + std::to_string(declared) + ", decoded " +
         std::to_string(count_));
    return false;
  }
  const auto digest = md5_.digest();
  if (digest != stored) {
    fail("fingerprint mismatch: trace is corrupt");
    return false;
  }
  info_.samples = declared;
  info_.fingerprint = Md5::to_hex(stored);
  done_ = true;
  return true;
}

bool TraceReader::next(core::TraceSample& out) {
  if (done_ || !ok()) return false;
  if (block_remaining_ == 0) {
    const int marker = in_.get();
    if (marker == std::ifstream::traits_type::eof()) {
      fail("truncated: missing footer");
      return false;
    }
    if (marker == kFooterMarker) {
      read_footer();
      return false;
    }
    if (marker != kBlockMarker) {
      fail("corrupt block marker");
      return false;
    }
    std::uint64_t core = 0, count = 0;
    if (!read_varint(in_, core) || !read_varint(in_, count)) {
      fail("truncated block header");
      return false;
    }
    if (count == 0 || count > TraceWriter::kMaxBlockSamples || core >= kMaxCores) {
      fail("corrupt block header");
      return false;
    }
    block_core_ = static_cast<CoreId>(core);
    block_remaining_ = static_cast<std::uint32_t>(count);
  }

  std::uint64_t dt = 0, dvaddr = 0, dpc = 0, latency = 0, region = 0;
  if (!read_varint(in_, dt) || !read_varint(in_, dvaddr) || !read_varint(in_, dpc)) {
    fail("truncated sample");
    return false;
  }
  const int packed = in_.get();
  if (packed == std::ifstream::traits_type::eof()) {
    fail("truncated sample");
    return false;
  }
  if (!read_varint(in_, latency) || !read_varint(in_, region)) {
    fail("truncated sample");
    return false;
  }
  const unsigned op = static_cast<unsigned>(packed) >> 4;
  const unsigned level = static_cast<unsigned>(packed) & 0xf;
  if (op > 1 || level >= kNumMemLevels || latency > 0xffff) {
    fail("corrupt sample encoding");
    return false;
  }

  auto& pred = predictor_for(predictors_, block_core_);
  out.time_ns = apply_delta(pred.time_ns, dt);
  out.vaddr = apply_delta(pred.vaddr, dvaddr);
  out.pc = apply_delta(pred.pc, dpc);
  out.op = static_cast<MemOp>(op);
  out.level = static_cast<MemLevel>(level);
  out.latency = static_cast<std::uint16_t>(latency);
  out.core = block_core_;
  out.region = static_cast<std::int32_t>(unzigzag(region));
  pred.time_ns = out.time_ns;
  pred.vaddr = out.vaddr;
  pred.pc = out.pc;

  core::fingerprint_update(md5_, out);
  ++count_;
  --block_remaining_;
  return true;
}

core::SampleTrace TraceReader::read_all() {
  core::SampleTrace trace;
  core::TraceSample s;
  while (next(s)) trace.add(s);
  if (!ok()) trace.clear();
  return trace;
}

std::optional<TraceFileInfo> TraceReader::probe(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const auto size = static_cast<std::uint64_t>(in.tellg());
  if (size < kHeaderBytes + kFooterBytes) return std::nullopt;

  in.seekg(0);
  std::uint64_t magic = 0, version = 0, reserved = 0;
  if (!read_fixed(in, magic, 4) || !read_fixed(in, version, 2) || !read_fixed(in, reserved, 2) ||
      magic != kTraceMagic || version != kTraceVersion) {
    return std::nullopt;
  }

  in.seekg(static_cast<std::streamoff>(size - kFooterBytes));
  if (in.get() != kFooterMarker) return std::nullopt;
  TraceFileInfo info;
  info.version = static_cast<std::uint16_t>(version);
  if (!read_fixed(in, info.samples, 8)) return std::nullopt;
  std::array<std::uint8_t, 16> digest{};
  if (!read_raw(in, digest.data(), digest.size())) return std::nullopt;
  std::uint64_t end_magic = 0;
  if (!read_fixed(in, end_magic, 4) || end_magic != kTraceEndMagic) return std::nullopt;
  info.fingerprint = Md5::to_hex(digest);
  return info;
}

}  // namespace nmo::store
