// The on-disk sample trace: a compact, versioned binary format that
// round-trips core::SampleTrace losslessly.
//
// NMO's post-processing workflow (section III of the paper) consumes one
// trace per run; serving many concurrent profiled jobs needs traces to be
// first-class on-disk artifacts that sessions write independently and a
// merge tool folds back together (ROADMAP: multi-process/multi-session
// output).  The layout borrows what makes the BSC/PROMPT trace formats
// cheap to stream:
//
//   header   u32 magic "NMOT" | u16 version | u16 reserved
//   blocks   marker 0xB7 | varint core | varint count | count samples
//   footer   marker 0xF5 | u64 sample count | 16-byte MD5 | u32 end magic
//
// Samples are written in add() order, chopped into per-core blocks: a block
// covers a maximal run of consecutive samples from one core (bounded by
// kMaxBlockSamples).  Within a core the writer keeps predictor state across
// blocks, so timestamps, data addresses and PCs are zigzag-varint deltas
// against that core's previous sample - the fields that change slowly per
// core and would dominate a fixed-width encoding.  Latency is a plain
// varint, op/level pack into one byte, region is a zigzag varint.
//
// The footer carries the sample count and the MD5 fingerprint over the
// samples in file order, computed with the very routine SampleTrace uses
// (core::fingerprint_update), so `TraceReader::read_all().fingerprint()`
// equals the footer digest and a writer fed a trace reproduces that
// trace's own fingerprint().  Readers reject bad magic, unknown versions,
// truncated files, and count/digest mismatches.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/md5.hpp"
#include "core/trace.hpp"

namespace nmo::store {

inline constexpr std::uint32_t kTraceMagic = 0x544F4D4E;     // "NMOT" little-endian
inline constexpr std::uint32_t kTraceEndMagic = 0x454F4D4E;  // "NMOE" little-endian
inline constexpr std::uint16_t kTraceVersion = 1;
inline constexpr std::uint8_t kBlockMarker = 0xB7;
inline constexpr std::uint8_t kFooterMarker = 0xF5;
/// Largest core id the format accepts.  Bounds the per-core predictor
/// tables on both sides, so a corrupt block header cannot drive a reader
/// into an absurd allocation; generous against any machine the simulator
/// (or the paper's testbed) models.
inline constexpr std::uint32_t kMaxCores = 1u << 16;
/// Conventional extension for trace files ("<name>.nmot").
inline constexpr std::string_view kTraceExtension = ".nmot";

namespace detail {
/// Per-core delta predictor (persists across blocks of the same core);
/// writer and reader must evolve it identically.
struct CorePredictor {
  std::uint64_t time_ns = 0;
  Addr vaddr = 0;
  Addr pc = 0;
};
}  // namespace detail

/// What the header + footer declare about a trace file.
struct TraceFileInfo {
  std::uint16_t version = 0;
  std::uint64_t samples = 0;
  std::string fingerprint;  ///< Lowercase MD5 hex from the footer.
};

class TraceWriter {
 public:
  /// Longest run of same-core samples one block may cover; bounds the
  /// decode working set of a streaming reader.
  static constexpr std::size_t kMaxBlockSamples = 512;

  /// Opens `path` for writing and emits the header.  Check ok().
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Appends one sample (buffered; flushed on core change / block full).
  void add(const core::TraceSample& s);
  /// Appends every sample of `trace` in order.
  void write_all(const core::SampleTrace& trace);

  /// Flushes the open block, writes the footer and closes the file.
  /// Idempotent; also run by the destructor.  Returns ok().  If an add()
  /// error is pending the footer is withheld (see abandon()) so the
  /// partial file can never validate as complete.
  bool close();

  /// Closes the file WITHOUT writing a footer (error paths): the partial
  /// file on disk stays rejectable-by-design so it can never pass for a
  /// complete trace.  After abandon(), close() is a no-op.
  void abandon();

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::uint64_t samples_written() const { return count_; }
  /// The footer digest; valid (non-empty) only after close().
  [[nodiscard]] const std::string& fingerprint() const { return fingerprint_; }

 private:
  void flush_block();

  std::ofstream out_;
  std::string error_;
  std::vector<std::byte> block_;  ///< Encoded payload of the open block.
  CoreId block_core_ = 0;
  std::uint32_t block_count_ = 0;
  std::vector<detail::CorePredictor> predictors_;  ///< Indexed by core (grown on demand).
  Md5 md5_;
  std::uint64_t count_ = 0;
  std::string fingerprint_;
  bool closed_ = false;
};

class TraceReader {
 public:
  /// Opens `path` and validates the header.  Check ok().
  explicit TraceReader(const std::string& path);

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  /// Streams the next sample.  Returns false at end of trace (after the
  /// footer validated) or on error - distinguish with ok().
  bool next(core::TraceSample& out);

  /// Reads and validates the entire file into a SampleTrace (in file
  /// order).  On error the partial trace is discarded; check ok().
  [[nodiscard]] core::SampleTrace read_all();

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }
  /// Footer metadata; fully populated once the stream hit the footer
  /// (i.e. after next() returned false with ok(), or via probe()).
  [[nodiscard]] const TraceFileInfo& info() const { return info_; }

  /// Reads header + footer only (seeks past the blocks); validates magic,
  /// version and end marker but not the sample stream.  nullopt on error.
  static std::optional<TraceFileInfo> probe(const std::string& path);

 private:
  void fail(std::string message);
  bool read_footer();

  std::ifstream in_;
  std::string error_;
  TraceFileInfo info_;
  std::vector<detail::CorePredictor> predictors_;
  CoreId block_core_ = 0;
  std::uint32_t block_remaining_ = 0;
  Md5 md5_;
  std::uint64_t count_ = 0;
  bool done_ = false;
};

}  // namespace nmo::store
