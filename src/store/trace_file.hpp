// The on-disk sample trace: a compact, versioned binary format that
// round-trips core::SampleTrace losslessly.
//
// NMO's post-processing workflow (section III of the paper) consumes one
// trace per run; serving many concurrent profiled jobs needs traces to be
// first-class on-disk artifacts that sessions write independently and a
// merge tool folds back together (ROADMAP: multi-process/multi-session
// output).  The layout borrows what makes the BSC/PROMPT trace formats
// cheap to stream:
//
//   header   u32 magic "NMOT" | u16 version | u16 reserved
//   blocks   per-core runs of varint/delta-encoded samples (see below)
//   footer   marker 0xF5 | u64 sample count | 16-byte MD5 | u32 end magic
//
// Samples are written in add() order.  Timestamps, data addresses and PCs
// are zigzag-varint deltas against the same core's previous sample - the
// fields that change slowly per core and would dominate a fixed-width
// encoding.  Latency is a plain varint, op/level pack into one byte,
// region is a zigzag varint.
//
// Version 1 blocks are `marker 0xB7 | varint core | varint count | samples`
// covering a maximal run of consecutive samples from one core, and the
// delta predictors persist across blocks of the same core - which means no
// block can be decoded without decoding every earlier block of its core,
// so v1 supports neither seeking nor per-block compression.  Worse, in the
// canonical (time-sorted) order cores interleave sample by sample, so v1
// "blocks" degenerate to a handful of samples each and the per-block
// framing becomes pure overhead.
//
// Version 2 makes every block self-contained and adds a block index:
//
//   block    marker 0xB7 | varint count | u8 codec | varint cores
//            | per core: varint id, varint base_time, varint base_vaddr,
//                        varint base_pc
//            | varint raw_bytes | varint stored_bytes | payload
//   sample   varint core slot | the six v1 sample fields
//   index    marker 0xA9 | varint blocks
//            | per block: varint offset delta | varint first core
//            | varint count
//   meta     (optional) marker 0xAD | varint blocks (== index blocks)
//            | per block: varint min_time | varint max_time - min_time
//                         | varint min_addr | varint max_addr - min_addr
//                         | varint samples per MemLevel (kNumMemLevels of them)
//                         | varint region bitmap (see BlockMeta::region_bit)
//   footer   marker 0xF5 | u64 sample count | 16-byte MD5
//            | u64 index offset | u32 end magic
//
// A v2 block covers up to kMaxBlockSamples consecutive samples of *any*
// mix of cores (file order preserved); its header lists every core that
// appears, in first-appearance order, together with that core's delta base
// (the predictor state at the core's first sample in the block).  Each
// sample names its core as a slot into that table, so predictors reset at
// every block boundary and a block decodes from its own bytes alone.  The
// payload may pass through the block codec (store/block_codec.hpp); a
// block that does not shrink is stored raw.  The index footer records
// every block's file offset, first core and sample count, which buys O(1)
// seek_block() and block-parallel decode (read_all_parallel).  The optional
// metadata section after the index summarizes each block's contents -
// time/address bounds, per-level sample counts, a region-presence bitmap -
// so a query (store/trace_query.hpp) can prove a block holds no matching
// sample and skip it without decompressing it.  The section is strictly
// additive: v2 files without it (anything written before the section
// existed, or with Options::index_meta = false) read exactly as before,
// and the footer layout is unchanged.  Readers accept both versions
// byte-for-byte; writers emit v2 unless TraceWriter::Options says
// otherwise.
//
// The footer carries the sample count and the MD5 fingerprint over the
// samples in file order, computed with the very routine SampleTrace uses
// (core::fingerprint_update), so `TraceReader::read_all().fingerprint()`
// equals the footer digest and a writer fed a trace reproduces that
// trace's own fingerprint() - in either version, since the digest is over
// decoded samples, not encoded bytes.  Readers reject bad magic, unknown
// versions, truncated files, overlong varints, out-of-range field values,
// index mismatches and count/digest mismatches.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/md5.hpp"
#include "core/trace.hpp"
#include "store/block_codec.hpp"

namespace nmo::store {

inline constexpr std::uint32_t kTraceMagic = 0x544F4D4E;     // "NMOT" little-endian
inline constexpr std::uint32_t kTraceEndMagic = 0x454F4D4E;  // "NMOE" little-endian
/// The legacy format: shared-predictor blocks, no codec, no index.
inline constexpr std::uint16_t kTraceVersion1 = 1;
/// Self-contained (optionally compressed) blocks + block-index footer.
inline constexpr std::uint16_t kTraceVersion2 = 2;
/// What TraceWriter emits by default.
inline constexpr std::uint16_t kTraceVersion = kTraceVersion2;
inline constexpr std::uint8_t kBlockMarker = 0xB7;
inline constexpr std::uint8_t kIndexMarker = 0xA9;
inline constexpr std::uint8_t kMetaMarker = 0xAD;
inline constexpr std::uint8_t kFooterMarker = 0xF5;
/// Largest core id the format accepts.  Bounds the per-core predictor
/// tables on both sides, so a corrupt block header cannot drive a reader
/// into an absurd allocation; generous against any machine the simulator
/// (or the paper's testbed) models.
inline constexpr std::uint32_t kMaxCores = 1u << 16;
/// Conventional extension for trace files ("<name>.nmot").
inline constexpr std::string_view kTraceExtension = ".nmot";

namespace detail {
/// Per-core delta predictor.  In v1 it persists across blocks of the same
/// core (writer and reader must evolve it identically); in v2 it resets to
/// the block header's per-core base at every block boundary.
struct CorePredictor {
  std::uint64_t time_ns = 0;
  Addr vaddr = 0;
  Addr pc = 0;
};

/// One entry of a v2 block's core table: a core appearing in the block and
/// its delta base, in first-appearance (= sample slot) order.
struct BlockCoreBase {
  CoreId core = 0;
  CorePredictor base;
};
}  // namespace detail

/// What the header + footer declare about a trace file.
struct TraceFileInfo {
  std::uint16_t version = 0;
  std::uint64_t samples = 0;
  std::string fingerprint;  ///< Lowercase MD5 hex from the footer.
};

/// One entry of the v2 block index: where a block lives and what it holds.
struct BlockIndexEntry {
  std::uint64_t offset = 0;  ///< File offset of the block marker byte.
  /// Core of the block's first sample (v2 blocks may interleave several
  /// cores; v1 blocks hold exactly one).
  CoreId core = 0;
  std::uint32_t samples = 0;
};

/// Per-block content summary from the v2 metadata section: enough to prove
/// a block cannot hold a sample matching a time-window, address-range,
/// level or region predicate, so queries skip it without decompressing it.
/// All bounds are inclusive and conservative-exact: the writer computes
/// them from the very samples it encodes, and full reads cross-check them
/// against the decoded block (a disagreement is a corrupt-index error).
struct BlockMeta {
  std::uint64_t min_time = 0;
  std::uint64_t max_time = 0;
  Addr min_addr = 0;
  Addr max_addr = 0;
  std::uint64_t level_samples[kNumMemLevels] = {};  ///< Samples per MemLevel.
  std::uint64_t region_bits = 0;  ///< Region-presence bitmap, see region_bit().

  /// The bitmap bit a region id sets: bit 0 = untagged (-1), bit 1+r for
  /// regions 0..61, bit 63 = any region >= 62 (the shared overflow bit,
  /// which makes the filter conservative, never wrong, for high ids).
  [[nodiscard]] static std::uint64_t region_bit(std::int32_t region) noexcept {
    if (region < 0) return std::uint64_t{1};
    if (region < 62) return std::uint64_t{1} << (region + 1);
    return std::uint64_t{1} << 63;
  }

  /// Conservative test: false only when no sample with this region id can
  /// be in the block.
  [[nodiscard]] bool may_contain_region(std::int32_t region) const noexcept {
    return (region_bits & region_bit(region)) != 0;
  }

  /// Total samples summarized (the per-level counts partition the block).
  [[nodiscard]] std::uint64_t samples() const noexcept {
    std::uint64_t total = 0;
    for (const auto n : level_samples) total += n;
    return total;
  }

  /// Folds one sample into the summary (writer side and full-read
  /// cross-check side share this, so they can never diverge).
  void absorb(const core::TraceSample& s) noexcept {
    if (samples() == 0) {
      min_time = max_time = s.time_ns;
      min_addr = max_addr = s.vaddr;
    } else {
      min_time = s.time_ns < min_time ? s.time_ns : min_time;
      max_time = s.time_ns > max_time ? s.time_ns : max_time;
      min_addr = s.vaddr < min_addr ? s.vaddr : min_addr;
      max_addr = s.vaddr > max_addr ? s.vaddr : max_addr;
    }
    ++level_samples[static_cast<std::size_t>(s.level)];
    region_bits |= region_bit(s.region);
  }

  [[nodiscard]] bool operator==(const BlockMeta& other) const noexcept {
    if (min_time != other.min_time || max_time != other.max_time ||
        min_addr != other.min_addr || max_addr != other.max_addr ||
        region_bits != other.region_bits) {
      return false;
    }
    for (std::size_t l = 0; l < kNumMemLevels; ++l) {
      if (level_samples[l] != other.level_samples[l]) return false;
    }
    return true;
  }
};

class TraceWriter {
 public:
  /// Longest run of same-core samples one block may cover; bounds the
  /// decode working set of a streaming reader.
  static constexpr std::size_t kMaxBlockSamples = 512;

  /// Output format knobs.  The default writes the current version with the
  /// block codec enabled; Options{.version = kTraceVersion1} reproduces the
  /// legacy format bit for bit (compress is ignored for v1, which has no
  /// codec stage).
  struct Options {
    std::uint16_t version = kTraceVersion;
    /// v2 only: run each block payload through the LZ codec, storing raw
    /// when compression does not shrink the block.
    bool compress = true;
    /// v2 only: emit the per-block metadata section after the index, which
    /// TraceQuery uses for predicate pushdown.  Off reproduces the
    /// pre-metadata v2 layout bit for bit.
    bool index_meta = true;
  };

  /// Observes every closed v2 block as the exact bytes written to the file
  /// (marker, header, payload - the self-contained wire unit the streaming
  /// layer ships verbatim, see net/wire.hpp).  Called synchronously on the
  /// writer's thread at block flush, before close() returns; `samples` and
  /// `first_core` mirror the block's index entry.  v1 blocks are not
  /// self-contained and are never observed.
  using BlockObserver = std::function<void(std::span<const std::byte> block_bytes,
                                           std::uint32_t samples, CoreId first_core)>;

  /// Opens `path` for writing and emits the header.  Check ok(); an
  /// unsupported options.version is an error, not an exception.  The
  /// single-argument overload writes the default Options (in-class default
  /// arguments cannot name a nested class's member initializers).
  explicit TraceWriter(const std::string& path);
  TraceWriter(const std::string& path, Options options);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Installs (or clears) the closed-block observer.  Effective for every
  /// block flushed after the call; install before the first add() to see
  /// them all.
  void set_block_observer(BlockObserver observer) { observer_ = std::move(observer); }

  /// Appends one sample (buffered; flushed on core change / block full).
  void add(const core::TraceSample& s);
  /// Appends every sample of `trace` in order.
  void write_all(const core::SampleTrace& trace);

  /// Flushes the open block, writes the index (v2) + footer and closes the
  /// file.  Idempotent; also run by the destructor.  Returns ok().  If an
  /// add() error is pending the footer is withheld (see abandon()) so the
  /// partial file can never validate as complete.
  bool close();

  /// Closes the file WITHOUT writing a footer (error paths): the partial
  /// file on disk stays rejectable-by-design so it can never pass for a
  /// complete trace.  After abandon(), close() is a no-op.
  void abandon();

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] const Options& options() const { return options_; }
  [[nodiscard]] std::uint64_t samples_written() const { return count_; }
  /// The footer digest; valid (non-empty) only after close().
  [[nodiscard]] const std::string& fingerprint() const { return fingerprint_; }

 private:
  void flush_block();

  std::ofstream out_;
  Options options_;
  std::string error_;
  std::vector<std::byte> block_;  ///< Encoded payload of the open block.
  CoreId block_core_ = 0;         ///< v1: the open block's single core.
  std::uint32_t block_count_ = 0;
  std::vector<detail::BlockCoreBase> block_cores_;  ///< v2: the open block's core table.
  std::vector<detail::CorePredictor> predictors_;   ///< Indexed by core (grown on demand).
  std::vector<BlockIndexEntry> index_;             ///< v2: one entry per flushed block.
  BlockMeta block_meta_;                           ///< v2: summary of the open block.
  std::vector<BlockMeta> meta_;                    ///< v2: one summary per flushed block.
  BlockObserver observer_;                         ///< v2: closed-block tee (may be empty).
  std::vector<std::byte> observed_;                ///< Scratch: contiguous block for observer_.
  std::uint64_t write_offset_ = 0;                 ///< Bytes written so far (next block offset).
  Md5 md5_;
  std::uint64_t count_ = 0;
  std::string fingerprint_;
  bool closed_ = false;
};

class TraceReader {
 public:
  /// Opens `path` and validates the header.  Check ok().
  explicit TraceReader(const std::string& path);

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  /// Streams the next sample.  Returns false at end of trace (after the
  /// footer validated) or on error - distinguish with ok().
  bool next(core::TraceSample& out);

  /// Reads and validates the entire file into a SampleTrace (in file
  /// order).  On error the partial trace is discarded; check ok().
  /// Legacy entry point: prefer TraceQuery (store/trace_query.hpp), which
  /// subsumes full reads, parallel reads and filtered reads behind one
  /// builder - `query(path).run()` is this call.
  [[nodiscard]] core::SampleTrace read_all();

  /// Loads the v2 block index from the footer (without touching the sample
  /// stream) and fills info().  Returns false for v1 traces, which carry no
  /// index - without setting an error, so the reader stays usable for a
  /// streaming read.  A corrupt v2 footer/index is a sticky error.
  bool load_index();
  /// The block index; empty until load_index() (or a full v2 stream read).
  [[nodiscard]] const std::vector<BlockIndexEntry>& block_index() const { return index_; }
  /// The per-block metadata parsed alongside the index; empty when the file
  /// predates the section (or was written with Options::index_meta off).
  /// When present it holds exactly one entry per index block.
  [[nodiscard]] const std::vector<BlockMeta>& block_meta() const { return meta_; }
  /// Whether the loaded index came with the metadata section.
  [[nodiscard]] bool has_block_meta() const { return !meta_.empty(); }

  /// Repositions the stream at block `block` of the index (loading it on
  /// demand): the next next() decodes that block's first sample, O(1) in
  /// the file size.  v2 only - v1 blocks are not independently decodable.
  /// After a seek the reader is in random-access mode: reaching the footer
  /// still validates structure, but the whole-file sample count and digest
  /// no longer apply to what was decoded and are not checked.
  /// Legacy entry point: prefer TraceQuery, which seeks on the caller's
  /// behalf when predicates prune the block list.
  bool seek_block(std::size_t block);

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }
  /// Footer metadata; fully populated once the stream hit the footer
  /// (i.e. after next() returned false with ok()), or via load_index() /
  /// probe().
  [[nodiscard]] const TraceFileInfo& info() const { return info_; }

  /// Reads the header and validates the file's structure without decoding
  /// samples: v2 footers are checked against their block index (offsets
  /// monotone, counts summing to the footer count, index ending exactly at
  /// the footer); v1 files - whose blocks carry no length - are walked
  /// structurally (varint skip, no delta/digest work), so probe() and a
  /// full read agree on where the sample stream ends and what may follow
  /// it.  nullopt on any structural error.
  static std::optional<TraceFileInfo> probe(const std::string& path);

 private:
  void fail(std::string message);
  bool read_footer(std::uint64_t index_offset_seen);
  bool read_index_and_footer();
  bool open_block(std::uint64_t marker_offset);
  bool decode_sample(core::TraceSample& out);

  std::ifstream in_;
  std::string error_;
  TraceFileInfo info_;
  std::vector<detail::CorePredictor> predictors_;  ///< v1 cross-block state.
  std::vector<detail::BlockCoreBase> block_cores_;  ///< v2 block-local state (slot order).
  CoreId block_core_ = 0;                           ///< v1: the open block's core.
  std::uint32_t block_remaining_ = 0;
  std::vector<std::byte> block_buf_;  ///< v2: decoded (raw) payload of the open block.
  std::size_t block_pos_ = 0;         ///< v2: cursor into block_buf_.
  std::vector<BlockIndexEntry> index_;
  std::vector<BlockMeta> meta_;               ///< v2: parsed metadata section (may be empty).
  std::vector<BlockIndexEntry> seen_blocks_;  ///< v2: blocks observed while streaming.
  std::vector<BlockMeta> seen_meta_;          ///< v2: summaries rebuilt while streaming.
  bool index_loaded_ = false;
  bool seeked_ = false;  ///< Random-access mode: footer count/digest not applicable.
  Md5 md5_;
  std::uint64_t count_ = 0;
  bool done_ = false;
};

/// Decodes one self-contained v2 block from memory: `block` must be the
/// exact bytes TraceWriter flushed (marker byte through the last payload
/// byte - what a BlockObserver saw, or what net/wire.hpp carried in a block
/// frame).  Appends the decoded samples to `out` in block order.  Applies
/// the full corrupt-input discipline of TraceReader (bounded sizes, varint
/// overflow, field ranges, payload exactly consumed) plus a whole-span
/// check: trailing bytes after the block are an error.  Returns false (and
/// sets *error) on any malformation, leaving `out` untouched.
bool decode_v2_block(std::span<const std::byte> block, std::vector<core::TraceSample>& out,
                     std::string* error = nullptr);

/// Decodes `path` with up to `threads` workers splitting the v2 block index
/// (each worker seeks its own reader to its block range), reassembles the
/// samples in file order and validates the footer count and digest over the
/// result - the parallel counterpart of TraceReader::read_all().  Falls
/// back to a streaming read for v1 traces or thread counts <= 1.  nullopt
/// on error (message in *error when non-null).
/// Legacy entry point: a thin wrapper over TraceQuery
/// (`query(path).run(threads)`), kept so existing callers need not change.
std::optional<core::SampleTrace> read_all_parallel(const std::string& path, unsigned threads,
                                                   std::string* error = nullptr);

}  // namespace nmo::store
