#include "store/trace_query.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <thread>

#include "sys/topology.hpp"

namespace nmo::store {

TraceQuery& TraceQuery::time_between(std::uint64_t t0, std::uint64_t t1) {
  has_time_ = true;
  time_lo_ = std::min(t0, t1);
  time_hi_ = std::max(t0, t1);
  return *this;
}

TraceQuery& TraceQuery::address_in(Addr lo, Addr hi) {
  has_addr_ = true;
  addr_lo_ = std::min(lo, hi);
  addr_hi_ = std::max(lo, hi);
  return *this;
}

TraceQuery& TraceQuery::region(std::int32_t r) {
  if (std::find(regions_.begin(), regions_.end(), r) == regions_.end()) regions_.push_back(r);
  return *this;
}

TraceQuery& TraceQuery::level(MemLevel l) {
  level_mask_ |= 1u << static_cast<unsigned>(l);
  return *this;
}

bool TraceQuery::unconstrained() const {
  return !has_time_ && !has_addr_ && regions_.empty() && level_mask_ == 0;
}

bool TraceQuery::matches(const core::TraceSample& s) const {
  if (has_time_ && (s.time_ns < time_lo_ || s.time_ns > time_hi_)) return false;
  if (has_addr_ && (s.vaddr < addr_lo_ || s.vaddr > addr_hi_)) return false;
  if (level_mask_ != 0 && ((level_mask_ >> static_cast<unsigned>(s.level)) & 1u) == 0) {
    return false;
  }
  if (!regions_.empty() &&
      std::find(regions_.begin(), regions_.end(), s.region) == regions_.end()) {
    return false;
  }
  return true;
}

bool TraceQuery::may_match(const BlockMeta& m) const {
  if (has_time_ && (m.max_time < time_lo_ || m.min_time > time_hi_)) return false;
  if (has_addr_ && (m.max_addr < addr_lo_ || m.min_addr > addr_hi_)) return false;
  if (level_mask_ != 0) {
    bool any = false;
    for (std::size_t l = 0; l < kNumMemLevels; ++l) {
      if (((level_mask_ >> l) & 1u) != 0 && m.level_samples[l] > 0) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  if (!regions_.empty()) {
    bool any = false;
    for (const auto r : regions_) {
      if (m.may_contain_region(r)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

TraceQuery::Result TraceQuery::run(unsigned threads) const {
  Result result;
  TraceReader head(path_);
  if (!head.ok()) {
    result.error = head.error();
    return result;
  }

  if (head.info().version != kTraceVersion2) {
    // v1 carries no index: stream the whole file (count and digest
    // validated by the reader as always) and filter per sample.
    core::TraceSample s;
    while (head.next(s)) {
      ++result.stats.samples_scanned;
      if (matches(s)) result.samples.add(s);
    }
    if (!head.ok()) {
      result.error = head.error();
      result.samples.clear();
      return result;
    }
    result.info = head.info();
    result.stats.samples_matched = result.samples.size();
    result.ok = true;
    return result;
  }

  if (!head.load_index()) {
    result.error = head.error();
    return result;
  }
  result.info = head.info();
  const auto& index = head.block_index();
  const auto& meta = head.block_meta();
  const bool pushdown = head.has_block_meta();
  result.stats.blocks_total = index.size();
  result.stats.pushdown = pushdown;

  // The prune: keep only blocks whose summary admits a match.  Without
  // metadata every block survives and the query degrades to a (possibly
  // parallel) full scan with per-sample filtering.
  std::vector<std::size_t> picked;
  picked.reserve(index.size());
  for (std::size_t b = 0; b < index.size(); ++b) {
    if (!pushdown || may_match(meta[b])) {
      picked.push_back(b);
      result.stats.samples_scanned += index[b].samples;
    }
  }
  result.stats.blocks_scanned = picked.size();
  result.stats.blocks_skipped = index.size() - picked.size();
  if (picked.empty()) {
    result.ok = true;
    return result;
  }

  // Contiguous slices of the surviving list, balanced by sample count.  A
  // worker seeks only at its slice start and wherever pruning left a gap;
  // adjacent surviving blocks stream through without repositioning.
  struct Slice {
    std::size_t first = 0;  ///< Index into `picked`.
    std::size_t count = 0;
    std::uint64_t samples = 0;
  };
  const std::size_t workers =
      std::max<std::size_t>(1, std::min<std::size_t>(threads, picked.size()));
  const std::uint64_t target = result.stats.samples_scanned / workers + 1;
  std::vector<Slice> slices;
  for (std::size_t k = 0; k < picked.size(); ++k) {
    if (slices.empty() || (slices.back().samples >= target && slices.size() < workers)) {
      slices.push_back(Slice{k, 0, 0});
    }
    ++slices.back().count;
    slices.back().samples += index[picked[k]].samples;
  }

  std::vector<core::SampleTrace> parts(slices.size());
  std::vector<std::string> errors(slices.size());
  const auto scan_slice = [&](std::size_t r) {
    TraceReader reader(path_);
    if (!reader.ok()) {
      errors[r] = reader.error();
      return;
    }
    std::size_t prev = std::size_t(-1);
    core::TraceSample s;
    for (std::size_t k = slices[r].first; k < slices[r].first + slices[r].count; ++k) {
      const std::size_t b = picked[k];
      if (prev == std::size_t(-1) || b != prev + 1) {
        if (!reader.seek_block(b)) {
          errors[r] = reader.ok() ? "seek_block failed" : reader.error();
          return;
        }
      }
      for (std::uint32_t i = 0; i < index[b].samples; ++i) {
        if (!reader.next(s)) {
          errors[r] = reader.ok() ? "unexpected end of block" : reader.error();
          return;
        }
        if (matches(s)) parts[r].add(s);
      }
      prev = b;
    }
  };

  if (slices.size() == 1) {
    scan_slice(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(slices.size());
    for (std::size_t r = 0; r < slices.size(); ++r) {
      pool.push_back(sys::named_thread("nmo-qry" + std::to_string(r), scan_slice, r));
    }
    for (auto& t : pool) t.join();
  }
  for (auto& e : errors) {
    if (!e.empty()) {
      result.error = std::move(e);
      return result;
    }
  }

  for (const auto& part : parts) result.samples.append(part);
  result.stats.samples_matched = result.samples.size();
  result.ok = true;
  return result;
}

// --- legacy wrapper ---------------------------------------------------------

std::optional<core::SampleTrace> read_all_parallel(const std::string& path, unsigned threads,
                                                   std::string* error) {
  auto result = TraceQuery(path).run(threads);
  const auto fail = [&](const std::string& message) {
    if (error) *error = message;
    return std::nullopt;
  };
  if (!result.ok) return fail(result.error);
  if (result.info.version == kTraceVersion2) {
    // Preserve this entry point's historical guarantee: the reassembled
    // samples are held to the footer's count and digest.  (The query's
    // seeked workers skip digest work, so re-validate over the result.)
    if (result.samples.size() != result.info.samples) {
      return fail("parallel decode produced " + std::to_string(result.samples.size()) +
                  " samples, footer declares " + std::to_string(result.info.samples));
    }
    if (result.samples.fingerprint() != result.info.fingerprint) {
      return fail("fingerprint mismatch: trace is corrupt");
    }
  }
  return std::move(result.samples);
}

}  // namespace nmo::store
