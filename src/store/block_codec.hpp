// Per-block payload codec for trace format v2 (store/trace_file.hpp).
//
// The v1 varint/delta encoding plateaus at ~14 B/sample because runs of
// near-identical sample encodings (constant strides, steady cadence) are
// still spelled out byte for byte.  v2 blocks are self-contained, so each
// block's payload can pass through a block-local compression stage before
// hitting disk.  The codec here is a deliberately small LZ77 with an
// LZ4-style token stream - no external dependency, no allocation on the
// decode path, and a decompressor that is strictly bounds-checked so a
// corrupt block fails cleanly instead of reading or writing out of bounds
// (the trace reader treats any decode failure as file corruption).
//
// Stream layout (one sequence per iteration):
//
//   token      u8: high nibble = literal count, low nibble = match length - 4
//              (15 in either nibble = extended length bytes follow: a run of
//              0xff bytes plus a final byte < 0xff, each adding to the count)
//   [lit ext]  extended literal length bytes
//   literals   raw bytes copied to the output
//   offset     u16 little-endian back-reference distance (1..65535); absent
//              when the compressed stream ends after the literals
//   [match ext] extended match length bytes
//
// Matches may overlap their own output (offset < length), which encodes runs.
// A block whose compressed form is not strictly smaller than the raw payload
// is stored raw (BlockCodec::kRaw) by the writer, so compression can never
// grow a file.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nmo::store {

/// How one v2 block's payload is stored on disk.
enum class BlockCodec : std::uint8_t {
  kRaw = 0,  ///< Payload bytes verbatim.
  kLz = 1,   ///< LZ77 token stream (this header).
};

[[nodiscard]] constexpr bool is_known_codec(std::uint8_t value) noexcept {
  return value <= static_cast<std::uint8_t>(BlockCodec::kLz);
}

/// Compresses `n` bytes at `src`.  Always succeeds (worst case the output is
/// slightly larger than the input - the caller compares sizes and falls back
/// to kRaw).
[[nodiscard]] std::vector<std::byte> lz_compress(const std::byte* src, std::size_t n);

/// Decompresses `src_n` compressed bytes into exactly `dst_n` output bytes.
/// Returns false on any malformed input: truncated sequences, offsets
/// reaching before the output start, or a stream that produces more or fewer
/// than `dst_n` bytes.  Never reads or writes out of bounds.
[[nodiscard]] bool lz_decompress(const std::byte* src, std::size_t src_n, std::byte* dst,
                                 std::size_t dst_n);

}  // namespace nmo::store
