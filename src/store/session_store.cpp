#include "store/session_store.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "core/budget.hpp"
#include "store/region_file.hpp"
#include "store/trace_file.hpp"

namespace nmo::store {
namespace {

/// Session names become path components; anything that could escape the
/// store root (separators, "..") or upset a shell glob is mapped to '_'.
std::string sanitize_name(std::string_view name) {
  std::string safe(name.empty() ? std::string_view("job") : name);
  for (char& c : safe) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) c = '_';
  }
  if (safe.find_first_not_of('.') == std::string::npos) safe = "job";
  return safe;
}

/// Values land in a key=value-per-line file; newlines in error strings
/// would break the framing.
std::string meta_escape(std::string_view value) {
  std::string out(value);
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

/// Profiles one job into its session directory: canonical trace, region
/// sidecar.  Fills everything in `result` except the scheduler placement
/// fields.  Never throws; failures land in result.error.
void run_one_session(SessionStore& store, const SessionJob& job, const RunOptions& options,
                     SessionResult& result) {
  // The token outlives the ProfileSession below (the engine keeps a raw
  // pointer to it until it is destroyed at scope exit).
  core::BudgetToken budget;
  try {
    result.tenant = job.tenant.empty() ? "default" : job.tenant;
    result.session = store.create_session(job.name, job.home_node);
    if (!job.make_workload) {
      result.error = "job has no workload factory";
      return;
    }
    auto workload = job.make_workload();

    const TraceWriter::Options trace_options =
        options.trace_options ? *options.trace_options : job.trace_options;

    // Streaming tee (optional): connect before the profile so heartbeats
    // cover the run.  Capture never depends on the connect outcome - the
    // local trace below is always written; a dead collector only flips
    // the fallback telemetry.
    std::unique_ptr<net::StreamingTraceSink> sink;
    sim::EngineConfig engine_config = job.engine;
    if (job.stream) {
      sink = std::make_unique<net::StreamingTraceSink>(*job.stream, result.session.name,
                                                       trace_options, result.session.id);
      if (sink->connect()) {
        engine_config.decode_progress = [tee = sink.get()](std::uint64_t records_ok) {
          tee->note_progress(records_ok);
        };
      }
    }

    // Per-job time budget: armed here (covering the baseline run too - the
    // budget is the job's wall-clock allowance, not the instrumented run's)
    // and polled at the monitor's drain-round checkpoint plus the replay
    // loop.  On overrun the engine stops replaying and the writer below
    // closes a valid truncated trace.
    if (job.limits.budget_ns > 0) {
      budget.arm(job.limits.budget_ns);
      engine_config.budget = &budget;
    }

    core::ProfileSession session(job.nmo, engine_config);
    result.report = session.profile(*workload, job.with_baseline);
    if (job.limits.budget_ns > 0) {
      result.budget_state = result.report.budget_truncated ? "truncated" : "ok";
    }

    TraceWriter writer(result.session.trace_path, trace_options);
    if (sink) {
      sink->attach(writer);
      sink->send_regions(session.profiler().regions().regions());
    }
    writer.write_all(session.profiler().trace());
    if (!writer.close()) {
      if (sink) sink->abort();
      result.error = writer.error();
      return;
    }
    result.samples = writer.samples_written();
    result.fingerprint = writer.fingerprint();
    if (sink) {
      sink->finish(result.samples, result.fingerprint);
      const auto stream_stats = sink->stats();
      result.stream.streamed = true;
      result.stream.stream_blocks_sent = stream_stats.blocks_sent;
      result.stream.stream_blocks_dropped = stream_stats.blocks_dropped;
      result.stream.stream_fallback = sink->fallback();
      result.stream.stream_error = stream_stats.error;
      result.stream.stream_state = result.stream.stream_fallback     ? "fallback"
                                   : stream_stats.blocks_dropped > 0 ? "partial"
                                                                     : "clean";
      result.report.stream_blocks_sent = stream_stats.blocks_sent;
      result.report.stream_blocks_dropped = stream_stats.blocks_dropped;
      result.report.stream_fallback = result.stream.stream_fallback;
    }

    // The region table gives the trace's region indices their names;
    // without it nmo-trace can only print bare indices.
    std::string region_error;
    if (!write_region_file(region_path_for(result.session.trace_path),
                           session.profiler().regions().regions(), &region_error)) {
      result.error = region_error;
      return;
    }

    // kFail turns an overrun into a job failure *after* the artifacts are
    // written: the truncated trace stays on disk, verify-clean, for
    // inspection.
    if (result.budget_state == "truncated" &&
        job.limits.on_overrun == OverrunPolicy::kFail) {
      result.error = "time budget exceeded (" + std::to_string(job.limits.budget_ns) +
                     " ns); trace truncated at " + std::to_string(result.samples) +
                     " samples";
    }
  } catch (const std::exception& e) {
    result.error = e.what();
  } catch (...) {
    // A non-std exception escaping here would either wedge a pool worker
    // or (on the threaded path) std::terminate the whole process.
    result.error = "unknown exception";
  }
}

/// Persists one session's outcome next to its trace (best-effort: metadata
/// must never turn a successful profile into a failure).
void write_session_meta(const SessionResult& result) {
  if (result.session.dir.empty()) return;
  std::ofstream out(result.session.dir + "/" + std::string(kSessionMetaFile), std::ios::trunc);
  if (!out) return;
  out << "id=" << result.session.id << '\n';
  out << "name=" << result.session.name << '\n';
  out << "state=" << core::to_string(result.state) << '\n';
  out << "tenant=" << meta_escape(result.tenant) << '\n';
  out << "worker=" << result.worker << '\n';
  out << "node=" << result.node << '\n';
  if (result.session.home_node) {
    out << "home_node=" << *result.session.home_node << '\n';
  }
  out << "queue_wait_ns=" << result.queue_wait_ns << '\n';
  out << "samples=" << result.samples << '\n';
  out << "fingerprint=" << result.fingerprint << '\n';
  out << "accuracy=" << result.report.accuracy() << '\n';
  out << "error=" << meta_escape(result.error) << '\n';
  if (!result.budget_state.empty()) {
    out << "budget_state=" << result.budget_state << '\n';
    out << "budget_checkpoints=" << result.report.budget_checkpoints << '\n';
  }
  if (result.stream.streamed) {
    // Keys mirror SessionResult::Stream field names one-for-one.
    out << "streamed=1\n";
    out << "stream_state=" << result.stream.stream_state << '\n';
    out << "stream_blocks_sent=" << result.stream.stream_blocks_sent << '\n';
    out << "stream_blocks_dropped=" << result.stream.stream_blocks_dropped << '\n';
    out << "stream_fallback=" << (result.stream.stream_fallback ? 1 : 0) << '\n';
    out << "stream_error=" << meta_escape(result.stream.stream_error) << '\n';
  }
}

/// Persists the pool's aggregate stats at the store root, one tenant.<i>.*
/// row group per tenant - the rows `nmo-trace sessions` renders as the
/// per-tenant fairness table.
void write_scheduler_meta(const std::string& root, const SchedulerConfig& config,
                          const SchedulerStats& stats) {
  std::ofstream out(root + "/" + std::string(kSchedulerMetaFile), std::ios::trunc);
  if (!out) return;
  out << "workers=" << stats.workers << '\n';
  out << "queue_depth=" << config.queue_depth << '\n';
  out << "policy=" << to_string(config.policy) << '\n';
  out << "submitted=" << stats.submitted << '\n';
  out << "admitted=" << stats.admitted << '\n';
  out << "rejected=" << stats.rejected << '\n';
  out << "shed=" << stats.shed << '\n';
  out << "expired=" << stats.expired << '\n';
  out << "requeued=" << stats.requeued << '\n';
  out << "completed=" << stats.completed << '\n';
  out << "failed=" << stats.failed << '\n';
  out << "queue_wait_ns_total=" << stats.queue_wait_ns_total << '\n';
  out << "queue_wait_ns_max=" << stats.queue_wait_ns_max << '\n';
  out << "queue_wait_p50_ns=" << stats.queue_wait_p50_ns << '\n';
  out << "queue_wait_p99_ns=" << stats.queue_wait_p99_ns << '\n';
  out << "peak_queue_depth=" << stats.peak_queue_depth << '\n';
  out << "peak_occupancy=" << stats.peak_occupancy << '\n';
  // Topology placement rows: node count, the soft hint's hit/miss split
  // and per-node admissions - what `nmo-trace sessions` renders as the
  // placement line.  A topology-free pool writes the single-node shape.
  const std::size_t nodes = std::max<std::size_t>(1, stats.node_admitted.size());
  out << "topology.nodes=" << nodes << '\n';
  out << "placement_local=" << stats.placement_local << '\n';
  out << "placement_misses=" << stats.placement_misses << '\n';
  for (std::size_t k = 0; k < stats.node_admitted.size(); ++k) {
    out << "node." << k << ".admitted=" << stats.node_admitted[k] << '\n';
  }
  out << "tenants=" << stats.tenants.size() << '\n';
  for (std::size_t i = 0; i < stats.tenants.size(); ++i) {
    const auto& t = stats.tenants[i];
    const std::string p = "tenant." + std::to_string(i) + ".";
    out << p << "name=" << meta_escape(t.name) << '\n';
    out << p << "weight=" << t.weight << '\n';
    out << p << "submitted=" << t.submitted << '\n';
    out << p << "admitted=" << t.admitted << '\n';
    out << p << "rejected=" << t.rejected << '\n';
    out << p << "shed=" << t.shed << '\n';
    out << p << "expired=" << t.expired << '\n';
    out << p << "requeued=" << t.requeued << '\n';
    out << p << "completed=" << t.completed << '\n';
    out << p << "failed=" << t.failed << '\n';
    out << p << "queue_wait_ns_total=" << t.queue_wait_ns_total << '\n';
    out << p << "queue_wait_ns_max=" << t.queue_wait_ns_max << '\n';
    out << p << "queue_wait_p50_ns=" << t.queue_wait_p50_ns << '\n';
    out << p << "queue_wait_p99_ns=" << t.queue_wait_p99_ns << '\n';
    out << p << "peak_queue_depth=" << t.peak_queue_depth << '\n';
    if (t.node_admitted.size() > 1) {
      for (std::size_t k = 0; k < t.node_admitted.size(); ++k) {
        out << p << "node." << k << ".admitted=" << t.node_admitted[k] << '\n';
      }
    }
  }
}

/// Thread-per-session executor (RunOptions{.threaded = true}): the
/// pre-scheduler baseline.  No admission control, no scheduler.meta.
MultiSessionRun run_sessions_thread_per_job(SessionStore& store,
                                            const std::vector<SessionJob>& jobs,
                                            const RunOptions& options) {
  MultiSessionRun run;
  run.results.resize(jobs.size());
  std::vector<std::thread> threads;
  threads.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    threads.push_back(sys::named_thread(
        "nmo-sess" + std::to_string(i),
        [&store, &options, &job = jobs[i], &result = run.results[i]] {
          run_one_session(store, job, options, result);
          result.state =
              result.error.empty() ? core::SessionState::kDone : core::SessionState::kFailed;
          result.report.sched_state = result.state;
          write_session_meta(result);
        }));
  }
  for (auto& t : threads) t.join();
  return run;
}

/// Shared context of one pooled run; lives on run_sessions' stack for the
/// whole run (wait_idle joins every task, including requeued attempts,
/// before it is torn down).
struct PoolRun {
  SessionStore* store = nullptr;
  const std::vector<SessionJob>* jobs = nullptr;
  const RunOptions* options = nullptr;
  MultiSessionRun* run = nullptr;
  Scheduler* scheduler = nullptr;
};

SubmitOptions submit_options_for(const SessionJob& job) {
  SubmitOptions submit;
  submit.priority = job.priority;
  submit.tenant = job.tenant;
  submit.deadline_ns = job.limits.deadline_ns;
  submit.home_node = job.home_node;
  return submit;
}

/// The pooled task body for job `i`, attempt `attempt`.  Defined as a free
/// function (not a lambda) because the kRequeue overrun policy resubmits
/// the job from inside the running task.
Scheduler::Task make_pool_task(PoolRun& pool, std::size_t i, int attempt) {
  return [&pool, i, attempt](const TaskStatus& task) {
    const SessionJob& job = (*pool.jobs)[i];
    SessionResult& result = pool.run->results[i];
    // A requeued attempt starts from a clean slate (fresh session
    // directory, fresh budget); the first attempt's artifacts stay on disk
    // under their own session id.
    if (attempt > 0) result = SessionResult{};
    run_one_session(*pool.store, job, *pool.options, result);
    // Placement fields go in AFTER the profile: run_one_session replaces
    // result.report wholesale, which would zero them.
    result.queue_wait_ns = task.queue_wait_ns;
    result.worker = task.worker;
    result.node = task.node;
    result.report.sched_queue_wait_ns = task.queue_wait_ns;
    result.report.sched_worker = task.worker;
    result.report.sched_node = task.node;
    result.state =
        result.error.empty() ? core::SessionState::kDone : core::SessionState::kFailed;
    result.report.sched_state = result.state;
    write_session_meta(result);
    // One retry for a budget overrun under kRequeue: back through the
    // queue admission-exempt (a capacity-checked submit from inside a
    // worker could deadlock a kBlock pool against itself).  A second
    // overrun keeps the truncated result.
    if (result.budget_state == "truncated" &&
        job.limits.on_overrun == OverrunPolicy::kRequeue && attempt == 0) {
      pool.scheduler->requeue(make_pool_task(pool, i, attempt + 1),
                              submit_options_for(job));
    }
    // Surface the failure to the scheduler's accounting (the worker
    // contains it; the pool keeps serving).
    if (!result.error.empty()) throw std::runtime_error(result.error);
  };
}

}  // namespace

std::string_view to_string(OverrunPolicy policy) noexcept {
  switch (policy) {
    case OverrunPolicy::kTruncate:
      return "truncate";
    case OverrunPolicy::kFail:
      return "fail";
    case OverrunPolicy::kRequeue:
      return "requeue";
  }
  return "?";
}

std::optional<std::map<std::string, std::string>> read_metadata_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::map<std::string, std::string> meta;
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    meta[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return meta;
}

SessionStore::SessionStore(std::string root) : root_(std::move(root)) {
  std::filesystem::create_directories(root_);
  // Resume id assignment past any sessions already in the root, so a
  // process reusing an earlier store (or following another process) does
  // not re-issue ids and truncate existing trace files.
  std::error_code ec;
  const auto note_session_dir = [this](const std::filesystem::path& path) {
    unsigned id = 0;
    if (std::sscanf(path.filename().string().c_str(), "session-%u-", &id) == 1 &&
        id >= next_id_) {
      next_id_ = id + 1;
    }
  };
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    note_session_dir(entry.path());
    // Per-node roots (node-<k>/) hold sessions too; the id counter is one
    // sequence across the whole store, so scan a level deeper.
    unsigned node = 0;
    if (std::sscanf(entry.path().filename().string().c_str(), "node-%u", &node) == 1) {
      std::error_code node_ec;
      for (const auto& sub : std::filesystem::directory_iterator(entry.path(), node_ec)) {
        note_session_dir(sub.path());
      }
    }
  }
}

SessionInfo SessionStore::create_session(std::string_view name,
                                         std::optional<std::uint32_t> home_node) {
  SessionInfo info;
  const core::MutexLock lock(mutex_);
  info.name = sanitize_name(name);
  info.home_node = home_node;
  std::string parent = root_;
  if (home_node) {
    // Socket-local root: the node's sessions cluster under one directory
    // a socket-local worker (and a socket-local reader) touches.
    parent += "/node-" + std::to_string(*home_node);
    std::error_code parent_ec;
    std::filesystem::create_directories(parent, parent_ec);
  }
  for (;;) {
    info.id = next_id_++;
    char id_buf[16];
    std::snprintf(id_buf, sizeof(id_buf), "%04u", info.id);
    info.dir = parent + "/session-" + id_buf + "-" + info.name;
    // Atomic claim: create_directory fails (without error) if the
    // directory exists, so two processes sharing the root can never both
    // claim this session directory - the loser moves to the next id.
    std::error_code ec;
    if (std::filesystem::create_directory(info.dir, ec)) break;
    if (ec) {
      // Not an already-exists collision (e.g. the root vanished); fall
      // back to best-effort creation rather than spinning.
      std::filesystem::create_directories(info.dir, ec);
      break;
    }
  }
  info.trace_path = info.dir + "/trace" + std::string(kTraceExtension);
  sessions_.push_back(info);
  return info;
}

std::vector<SessionInfo> SessionStore::sessions() const {
  const core::MutexLock lock(mutex_);
  return sessions_;
}

MultiSessionRun run_sessions(SessionStore& store, const std::vector<SessionJob>& jobs,
                             const RunOptions& options) {
  if (options.threaded) return run_sessions_thread_per_job(store, jobs, options);

  MultiSessionRun run;
  run.results.resize(jobs.size());
  std::vector<std::optional<TaskId>> tickets(jobs.size());
  {
    // The terminal-state sweep below reads every ticket after wait_idle();
    // a retention bound below the in-flight count would reap early tickets
    // before they are read, so floor it at twice the job count (requeued
    // attempts add at most one terminal entry per job; 0 stays 0: the run
    // drains its own ids via forget() either way).
    SchedulerConfig run_config = options.scheduler;
    if (run_config.status_retention != 0) {
      run_config.status_retention = std::max(run_config.status_retention, 2 * jobs.size());
    }
    Scheduler scheduler(run_config);
    PoolRun pool;
    pool.store = &store;
    pool.jobs = &jobs;
    pool.options = &options;
    pool.run = &run;
    pool.scheduler = &scheduler;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      tickets[i] = scheduler.submit(make_pool_task(pool, i, 0), submit_options_for(jobs[i]));
      if (!tickets[i]) {
        run.results[i].state = core::SessionState::kRejected;
        run.results[i].report.sched_state = core::SessionState::kRejected;
        run.results[i].error = "rejected by scheduler admission control (queue full)";
      }
    }
    scheduler.wait_idle();
    run.stats = scheduler.stats();
    // Jobs shed from the queue (or expired in it) never ran their task
    // body; their terminal state only exists in the scheduler's ledger.
    // Reading a ticket also releases it (forget), so the ledger stays
    // bounded.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (!tickets[i]) continue;
      if (const auto status = scheduler.status(*tickets[i])) {
        if (status->state == core::SessionState::kShed) {
          run.results[i].state = core::SessionState::kShed;
          run.results[i].report.sched_state = core::SessionState::kShed;
          run.results[i].error = "shed by scheduler admission control (queue full)";
        } else if (status->state == core::SessionState::kExpired) {
          run.results[i].state = core::SessionState::kExpired;
          run.results[i].report.sched_state = core::SessionState::kExpired;
          run.results[i].error = "deadline expired in admission queue";
        }
      }
      scheduler.forget(*tickets[i]);
    }
  }
  write_scheduler_meta(store.root(), options.scheduler, run.stats);
  // Fleet view: ship the freshly written scheduler.meta to the collector
  // over a one-shot control stream; it merges snapshots across senders at
  // its own root.  Best-effort like every streaming path - the local file
  // just written is the source of truth.
  for (const auto& job : jobs) {
    if (!job.stream) continue;
    std::ifstream in(store.root() + "/" + std::string(kSchedulerMetaFile));
    if (in) {
      std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
      net::stream_scheduler_meta(*job.stream, text);
    }
    break;
  }
  return run;
}

MultiSessionRun run_sessions(SessionStore& store, const std::vector<SessionJob>& jobs,
                             const SchedulerConfig& config) {
  RunOptions options;
  options.scheduler = config;
  return run_sessions(store, jobs, options);
}

std::vector<SessionResult> run_sessions_threaded(SessionStore& store,
                                                 const std::vector<SessionJob>& jobs) {
  RunOptions options;
  options.threaded = true;
  return run_sessions(store, jobs, options).results;
}

}  // namespace nmo::store
