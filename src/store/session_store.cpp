#include "store/session_store.hpp"

#include <cstdio>
#include <filesystem>
#include <thread>

#include "store/trace_file.hpp"

namespace nmo::store {
namespace {

/// Session names become path components; anything that could escape the
/// store root (separators, "..") or upset a shell glob is mapped to '_'.
std::string sanitize_name(std::string_view name) {
  std::string safe(name.empty() ? std::string_view("job") : name);
  for (char& c : safe) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) c = '_';
  }
  if (safe.find_first_not_of('.') == std::string::npos) safe = "job";
  return safe;
}

}  // namespace

SessionStore::SessionStore(std::string root) : root_(std::move(root)) {
  std::filesystem::create_directories(root_);
  // Resume id assignment past any sessions already in the root, so a
  // process reusing an earlier store (or following another process) does
  // not re-issue ids and truncate existing trace files.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    const std::string stem = entry.path().filename().string();
    unsigned id = 0;
    if (std::sscanf(stem.c_str(), "session-%u-", &id) == 1 && id >= next_id_) {
      next_id_ = id + 1;
    }
  }
}

SessionInfo SessionStore::create_session(std::string_view name) {
  SessionInfo info;
  std::lock_guard<std::mutex> lock(mutex_);
  info.name = sanitize_name(name);
  for (;;) {
    info.id = next_id_++;
    char id_buf[16];
    std::snprintf(id_buf, sizeof(id_buf), "%04u", info.id);
    info.dir = root_ + "/session-" + id_buf + "-" + info.name;
    // Atomic claim: create_directory fails (without error) if the
    // directory exists, so two processes sharing the root can never both
    // claim this session directory - the loser moves to the next id.
    std::error_code ec;
    if (std::filesystem::create_directory(info.dir, ec)) break;
    if (ec) {
      // Not an already-exists collision (e.g. the root vanished); fall
      // back to best-effort creation rather than spinning.
      std::filesystem::create_directories(info.dir, ec);
      break;
    }
  }
  info.trace_path = info.dir + "/trace" + std::string(kTraceExtension);
  sessions_.push_back(info);
  return info;
}

std::vector<SessionInfo> SessionStore::sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_;
}

std::vector<SessionResult> run_sessions(SessionStore& store,
                                        const std::vector<SessionJob>& jobs) {
  std::vector<SessionResult> results(jobs.size());
  std::vector<std::thread> threads;
  threads.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    threads.emplace_back([&store, &job = jobs[i], &result = results[i]] {
      try {
        result.session = store.create_session(job.name);
        if (!job.make_workload) {
          result.error = "job has no workload factory";
          return;
        }
        auto workload = job.make_workload();
        core::ProfileSession session(job.nmo, job.engine);
        result.report = session.profile(*workload, job.with_baseline);

        TraceWriter writer(result.session.trace_path);
        writer.write_all(session.profiler().trace());
        if (!writer.close()) {
          result.error = writer.error();
          return;
        }
        result.samples = writer.samples_written();
        result.fingerprint = writer.fingerprint();
      } catch (const std::exception& e) {
        result.error = e.what();
      } catch (...) {
        // A non-std exception escaping the thread would std::terminate the
        // whole process and take every concurrent session down with it.
        result.error = "unknown exception";
      }
    });
  }
  for (auto& t : threads) t.join();
  return results;
}

}  // namespace nmo::store
