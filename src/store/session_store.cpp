#include "store/session_store.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "store/region_file.hpp"
#include "store/trace_file.hpp"

namespace nmo::store {
namespace {

/// Session names become path components; anything that could escape the
/// store root (separators, "..") or upset a shell glob is mapped to '_'.
std::string sanitize_name(std::string_view name) {
  std::string safe(name.empty() ? std::string_view("job") : name);
  for (char& c : safe) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) c = '_';
  }
  if (safe.find_first_not_of('.') == std::string::npos) safe = "job";
  return safe;
}

/// Values land in a key=value-per-line file; newlines in error strings
/// would break the framing.
std::string meta_escape(std::string_view value) {
  std::string out(value);
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

/// Profiles one job into its session directory: canonical trace, region
/// sidecar.  Fills everything in `result` except the scheduler placement
/// fields.  Never throws; failures land in result.error.
void run_one_session(SessionStore& store, const SessionJob& job, SessionResult& result) {
  try {
    result.session = store.create_session(job.name);
    if (!job.make_workload) {
      result.error = "job has no workload factory";
      return;
    }
    auto workload = job.make_workload();

    // Streaming tee (optional): connect before the profile so heartbeats
    // cover the run.  Capture never depends on the connect outcome - the
    // local trace below is always written; a dead collector only flips
    // the fallback telemetry.
    std::unique_ptr<net::StreamingTraceSink> sink;
    sim::EngineConfig engine_config = job.engine;
    if (job.stream) {
      sink = std::make_unique<net::StreamingTraceSink>(*job.stream, result.session.name,
                                                       job.trace_options, result.session.id);
      if (sink->connect()) {
        engine_config.decode_progress = [tee = sink.get()](std::uint64_t records_ok) {
          tee->note_progress(records_ok);
        };
      }
    }

    core::ProfileSession session(job.nmo, engine_config);
    result.report = session.profile(*workload, job.with_baseline);

    TraceWriter writer(result.session.trace_path, job.trace_options);
    if (sink) {
      sink->attach(writer);
      sink->send_regions(session.profiler().regions().regions());
    }
    writer.write_all(session.profiler().trace());
    if (!writer.close()) {
      if (sink) sink->abort();
      result.error = writer.error();
      return;
    }
    result.samples = writer.samples_written();
    result.fingerprint = writer.fingerprint();
    if (sink) {
      sink->finish(result.samples, result.fingerprint);
      const auto stream_stats = sink->stats();
      result.streamed = true;
      result.stream_blocks_sent = stream_stats.blocks_sent;
      result.stream_blocks_dropped = stream_stats.blocks_dropped;
      result.stream_fallback = sink->fallback();
      result.stream_error = stream_stats.error;
      result.stream_state = result.stream_fallback           ? "fallback"
                            : stream_stats.blocks_dropped > 0 ? "partial"
                                                              : "clean";
      result.report.stream_blocks_sent = stream_stats.blocks_sent;
      result.report.stream_blocks_dropped = stream_stats.blocks_dropped;
      result.report.stream_fallback = result.stream_fallback;
    }

    // The region table gives the trace's region indices their names;
    // without it nmo-trace can only print bare indices.
    std::string region_error;
    if (!write_region_file(region_path_for(result.session.trace_path),
                           session.profiler().regions().regions(), &region_error)) {
      result.error = region_error;
    }
  } catch (const std::exception& e) {
    result.error = e.what();
  } catch (...) {
    // A non-std exception escaping here would either wedge a pool worker
    // or (on the threaded path) std::terminate the whole process.
    result.error = "unknown exception";
  }
}

/// Persists one session's outcome next to its trace (best-effort: metadata
/// must never turn a successful profile into a failure).
void write_session_meta(const SessionResult& result) {
  if (result.session.dir.empty()) return;
  std::ofstream out(result.session.dir + "/" + std::string(kSessionMetaFile), std::ios::trunc);
  if (!out) return;
  out << "id=" << result.session.id << '\n';
  out << "name=" << result.session.name << '\n';
  out << "state=" << core::to_string(result.state) << '\n';
  out << "worker=" << result.worker << '\n';
  out << "queue_wait_ns=" << result.queue_wait_ns << '\n';
  out << "samples=" << result.samples << '\n';
  out << "fingerprint=" << result.fingerprint << '\n';
  out << "accuracy=" << result.report.accuracy() << '\n';
  out << "error=" << meta_escape(result.error) << '\n';
  if (result.streamed) {
    out << "streamed=1\n";
    out << "stream_state=" << result.stream_state << '\n';
    out << "stream_blocks_sent=" << result.stream_blocks_sent << '\n';
    out << "stream_blocks_dropped=" << result.stream_blocks_dropped << '\n';
    out << "stream_error=" << meta_escape(result.stream_error) << '\n';
  }
}

/// Persists the pool's aggregate stats at the store root.
void write_scheduler_meta(const std::string& root, const SchedulerConfig& config,
                          const SchedulerStats& stats) {
  std::ofstream out(root + "/" + std::string(kSchedulerMetaFile), std::ios::trunc);
  if (!out) return;
  out << "workers=" << stats.workers << '\n';
  out << "queue_depth=" << config.queue_depth << '\n';
  out << "policy=" << to_string(config.policy) << '\n';
  out << "submitted=" << stats.submitted << '\n';
  out << "admitted=" << stats.admitted << '\n';
  out << "rejected=" << stats.rejected << '\n';
  out << "shed=" << stats.shed << '\n';
  out << "completed=" << stats.completed << '\n';
  out << "failed=" << stats.failed << '\n';
  out << "queue_wait_ns_total=" << stats.queue_wait_ns_total << '\n';
  out << "queue_wait_ns_max=" << stats.queue_wait_ns_max << '\n';
  out << "peak_queue_depth=" << stats.peak_queue_depth << '\n';
  out << "peak_occupancy=" << stats.peak_occupancy << '\n';
}

}  // namespace

std::optional<std::map<std::string, std::string>> read_metadata_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::map<std::string, std::string> meta;
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    meta[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return meta;
}

SessionStore::SessionStore(std::string root) : root_(std::move(root)) {
  std::filesystem::create_directories(root_);
  // Resume id assignment past any sessions already in the root, so a
  // process reusing an earlier store (or following another process) does
  // not re-issue ids and truncate existing trace files.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    const std::string stem = entry.path().filename().string();
    unsigned id = 0;
    if (std::sscanf(stem.c_str(), "session-%u-", &id) == 1 && id >= next_id_) {
      next_id_ = id + 1;
    }
  }
}

SessionInfo SessionStore::create_session(std::string_view name) {
  SessionInfo info;
  std::lock_guard<std::mutex> lock(mutex_);
  info.name = sanitize_name(name);
  for (;;) {
    info.id = next_id_++;
    char id_buf[16];
    std::snprintf(id_buf, sizeof(id_buf), "%04u", info.id);
    info.dir = root_ + "/session-" + id_buf + "-" + info.name;
    // Atomic claim: create_directory fails (without error) if the
    // directory exists, so two processes sharing the root can never both
    // claim this session directory - the loser moves to the next id.
    std::error_code ec;
    if (std::filesystem::create_directory(info.dir, ec)) break;
    if (ec) {
      // Not an already-exists collision (e.g. the root vanished); fall
      // back to best-effort creation rather than spinning.
      std::filesystem::create_directories(info.dir, ec);
      break;
    }
  }
  info.trace_path = info.dir + "/trace" + std::string(kTraceExtension);
  sessions_.push_back(info);
  return info;
}

std::vector<SessionInfo> SessionStore::sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_;
}

MultiSessionRun run_sessions(SessionStore& store, const std::vector<SessionJob>& jobs,
                             const SchedulerConfig& config) {
  MultiSessionRun run;
  run.results.resize(jobs.size());
  std::vector<std::optional<TaskId>> tickets(jobs.size());
  {
    // The shed-state sweep below reads every ticket after wait_idle(); a
    // retention bound below the job count would reap early tickets before
    // they are read, so floor it at the in-flight count (0 stays 0: the
    // run drains its own ids via forget() either way).
    SchedulerConfig run_config = config;
    if (run_config.status_retention != 0) {
      run_config.status_retention = std::max(run_config.status_retention, jobs.size());
    }
    Scheduler scheduler(run_config);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      tickets[i] = scheduler.submit(
          [&store, &job = jobs[i], &result = run.results[i]](const TaskStatus& task) {
            run_one_session(store, job, result);
            // Placement fields go in AFTER the profile: run_one_session
            // replaces result.report wholesale, which would zero them.
            result.queue_wait_ns = task.queue_wait_ns;
            result.worker = task.worker;
            result.report.sched_queue_wait_ns = task.queue_wait_ns;
            result.report.sched_worker = task.worker;
            result.state =
                result.error.empty() ? core::SessionState::kDone : core::SessionState::kFailed;
            result.report.sched_state = result.state;
            write_session_meta(result);
            // Surface the failure to the scheduler's accounting (the
            // worker contains it; the pool keeps serving).
            if (!result.error.empty()) throw std::runtime_error(result.error);
          },
          jobs[i].priority);
      if (!tickets[i]) {
        run.results[i].state = core::SessionState::kRejected;
        run.results[i].report.sched_state = core::SessionState::kRejected;
        run.results[i].error = "rejected by scheduler admission control (queue full)";
      }
    }
    scheduler.wait_idle();
    run.stats = scheduler.stats();
    // Jobs shed from the queue never ran their task body; their terminal
    // state only exists in the scheduler's ledger.  Reading a ticket also
    // releases it (forget), so the ledger stays bounded.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (!tickets[i]) continue;
      if (const auto status = scheduler.status(*tickets[i]);
          status && status->state == core::SessionState::kShed) {
        run.results[i].state = core::SessionState::kShed;
        run.results[i].report.sched_state = core::SessionState::kShed;
        run.results[i].error = "shed by scheduler admission control (queue full)";
      }
      scheduler.forget(*tickets[i]);
    }
  }
  write_scheduler_meta(store.root(), config, run.stats);
  // Fleet view: ship the freshly written scheduler.meta to the collector
  // over a one-shot control stream; it merges snapshots across senders at
  // its own root.  Best-effort like every streaming path - the local file
  // just written is the source of truth.
  for (const auto& job : jobs) {
    if (!job.stream) continue;
    std::ifstream in(store.root() + "/" + std::string(kSchedulerMetaFile));
    if (in) {
      std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
      net::stream_scheduler_meta(*job.stream, text);
    }
    break;
  }
  return run;
}

std::vector<SessionResult> run_sessions(SessionStore& store,
                                        const std::vector<SessionJob>& jobs) {
  return run_sessions(store, jobs, SchedulerConfig{}).results;
}

std::vector<SessionResult> run_sessions_threaded(SessionStore& store,
                                                 const std::vector<SessionJob>& jobs) {
  std::vector<SessionResult> results(jobs.size());
  std::vector<std::thread> threads;
  threads.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    threads.emplace_back([&store, &job = jobs[i], &result = results[i]] {
      run_one_session(store, job, result);
      result.state =
          result.error.empty() ? core::SessionState::kDone : core::SessionState::kFailed;
      result.report.sched_state = result.state;
      write_session_meta(result);
    });
  }
  for (auto& t : threads) t.join();
  return results;
}

}  // namespace nmo::store
