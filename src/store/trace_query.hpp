// Predicate-pushdown queries over stored traces: the one entry point for
// reading samples back out of a .nmot file, whether the caller wants all
// of them (a full decode), a parallel decode, or only the samples matching
// time-window / address-range / region / level predicates.
//
// The point of the v2 metadata section (store/trace_file.hpp): each block's
// summary - time and address bounds, per-level sample counts, a region
// bitmap - lets the query *prove* a block holds no matching sample and
// skip it without decompressing it.  Pruning is conservative (a scanned
// block may still yield nothing) and exact filtering happens per sample,
// so a pushdown query returns byte-for-byte what filtering a full decode
// returns - only cheaper.  Files without metadata (v1, or v2 written
// before the section existed) degrade gracefully: every block is scanned,
// the sample-level filter still applies, and Result::stats says pushdown
// was unavailable.
//
// Usage is a fluent builder:
//
//   auto result = query(path).time_between(t0, t1).region(2).run(threads);
//   if (result.ok) use(result.samples);   // file order, footer info in result.info
//
// TraceReader::read_all / seek_block and read_all_parallel() remain as
// legacy entry points; read_all_parallel is now a thin wrapper over an
// unconstrained query (plus the footer count/digest re-validation it has
// always promised).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "store/trace_file.hpp"

namespace nmo::store {

/// What a query did, block by block: evidence that pushdown pruned work
/// (blocks_skipped) and how selective the predicates were.
struct QueryStats {
  std::uint64_t blocks_total = 0;    ///< Blocks in the file's index (0 for v1).
  std::uint64_t blocks_scanned = 0;  ///< Blocks decoded and filtered.
  std::uint64_t blocks_skipped = 0;  ///< Blocks pruned via metadata alone.
  std::uint64_t samples_scanned = 0;  ///< Samples decoded (v1: whole file).
  std::uint64_t samples_matched = 0;  ///< Samples passing every predicate.
  bool pushdown = false;  ///< Block metadata was present and consulted.
};

/// A filtered read over one trace file.  Predicates AND together; a
/// repeated region()/level() call ORs within its dimension.  All bounds
/// are inclusive.  The builder is reusable: run() does not consume it.
class TraceQuery {
 public:
  explicit TraceQuery(std::string path) : path_(std::move(path)) {}

  /// Keep samples with time_ns in [t0, t1] (swapped if reversed).
  TraceQuery& time_between(std::uint64_t t0, std::uint64_t t1);
  /// Keep samples with vaddr in [lo, hi] (swapped if reversed).
  TraceQuery& address_in(Addr lo, Addr hi);
  /// Keep samples tagged with this region (-1 = untagged); repeatable.
  TraceQuery& region(std::int32_t r);
  /// Keep samples serviced by this memory level; repeatable.
  TraceQuery& level(MemLevel l);

  struct Result {
    bool ok = false;
    std::string error;
    core::SampleTrace samples;  ///< Matching samples, in file order.
    QueryStats stats;
    TraceFileInfo info;  ///< Header/footer facts about the file queried.
  };

  /// Executes the query with up to `threads` decode workers (contiguous
  /// runs of surviving blocks stream through one seek each).  Thread
  /// counts <= 1 decode inline.  v1 traces stream the whole file with
  /// count and digest validated en route; v2 scans are random-access and
  /// structurally validated per block.
  [[nodiscard]] Result run(unsigned threads = 1) const;

  /// The exact per-sample filter (public so callers can verify parity
  /// against an independent full decode).
  [[nodiscard]] bool matches(const core::TraceSample& s) const;
  /// The conservative per-block prune: false only when no sample in a
  /// block summarized by `m` can satisfy matches().
  [[nodiscard]] bool may_match(const BlockMeta& m) const;
  /// True when no predicate was set (the query is a plain full read).
  [[nodiscard]] bool unconstrained() const;

 private:
  std::string path_;
  bool has_time_ = false;
  std::uint64_t time_lo_ = 0;
  std::uint64_t time_hi_ = 0;
  bool has_addr_ = false;
  Addr addr_lo_ = 0;
  Addr addr_hi_ = 0;
  std::vector<std::int32_t> regions_;  ///< Empty = no region predicate.
  unsigned level_mask_ = 0;            ///< Bit per MemLevel; 0 = no predicate.
};

/// Builder entry point: `query(path).region(2).run()`.
inline TraceQuery query(std::string path) { return TraceQuery(std::move(path)); }

}  // namespace nmo::store
