#include "store/region_file.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace nmo::store {
namespace {

constexpr std::string_view kMagic = "nmo-regions";
constexpr int kVersion = 1;

void set_error(std::string* error, std::string message) {
  if (error) *error = std::move(message);
}

std::string escape_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::optional<std::string> unescape_name(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\') {
      out += text[i];
      continue;
    }
    if (++i == text.size()) return std::nullopt;  // dangling escape
    switch (text[i]) {
      case '\\':
        out += '\\';
        break;
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      default:
        return std::nullopt;
    }
  }
  return out;
}

}  // namespace

std::string region_path_for(const std::string& trace_path) {
  const std::string trace_ext = ".nmot";
  if (trace_path.size() > trace_ext.size() &&
      trace_path.compare(trace_path.size() - trace_ext.size(), trace_ext.size(), trace_ext) ==
          0) {
    return trace_path.substr(0, trace_path.size() - trace_ext.size()) +
           std::string(kRegionExtension);
  }
  return trace_path + std::string(kRegionExtension);
}

bool write_region_file(const std::string& path, const std::vector<core::AddrRegion>& regions,
                       std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    set_error(error, "cannot open " + path + " for writing");
    return false;
  }
  out << kMagic << '\t' << kVersion << '\n';
  out << regions.size() << '\n';
  char range[40];
  for (const auto& r : regions) {
    std::snprintf(range, sizeof(range), "%llx\t%llx\t",
                  static_cast<unsigned long long>(r.start),
                  static_cast<unsigned long long>(r.end));
    out << range << escape_name(r.name) << '\n';
  }
  out.flush();
  if (!out) {
    set_error(error, path + ": write failed");
    return false;
  }
  return true;
}

std::optional<std::vector<core::AddrRegion>> read_region_file(const std::string& path,
                                                              std::string* error) {
  std::ifstream in(path);
  if (!in) {
    set_error(error, "cannot open " + path);
    return std::nullopt;
  }
  std::string line;
  if (!std::getline(in, line)) {
    set_error(error, path + ": empty file");
    return std::nullopt;
  }
  std::string magic;
  int version = -1;
  {
    std::istringstream header(line);
    std::getline(header, magic, '\t');
    header >> version;
  }
  if (magic != kMagic) {
    set_error(error, path + ": not a region sidecar file");
    return std::nullopt;
  }
  if (version != kVersion) {
    set_error(error, path + ": unsupported region sidecar version " + std::to_string(version));
    return std::nullopt;
  }
  if (!std::getline(in, line)) {
    set_error(error, path + ": missing region count");
    return std::nullopt;
  }
  std::size_t count = 0;
  try {
    count = std::stoull(line);
  } catch (...) {
    set_error(error, path + ": bad region count");
    return std::nullopt;
  }

  std::vector<core::AddrRegion> regions;
  regions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) {
      set_error(error, path + ": truncated at region " + std::to_string(i));
      return std::nullopt;
    }
    const auto first_tab = line.find('\t');
    const auto second_tab =
        first_tab == std::string::npos ? std::string::npos : line.find('\t', first_tab + 1);
    if (second_tab == std::string::npos) {
      set_error(error, path + ": malformed region row " + std::to_string(i));
      return std::nullopt;
    }
    core::AddrRegion region;
    char* end = nullptr;
    const std::string start_text = line.substr(0, first_tab);
    const std::string end_text = line.substr(first_tab + 1, second_tab - first_tab - 1);
    region.start = std::strtoull(start_text.c_str(), &end, 16);
    if (start_text.empty() || end != start_text.c_str() + start_text.size()) {
      set_error(error, path + ": bad start address in region row " + std::to_string(i));
      return std::nullopt;
    }
    region.end = std::strtoull(end_text.c_str(), &end, 16);
    if (end_text.empty() || end != end_text.c_str() + end_text.size()) {
      set_error(error, path + ": bad end address in region row " + std::to_string(i));
      return std::nullopt;
    }
    auto name = unescape_name(line.substr(second_tab + 1));
    if (!name) {
      set_error(error, path + ": bad name escape in region row " + std::to_string(i));
      return std::nullopt;
    }
    region.name = std::move(*name);
    regions.push_back(std::move(region));
  }
  return regions;
}

namespace {

bool region_less(const core::AddrRegion& a, const core::AddrRegion& b) {
  if (a.name != b.name) return a.name < b.name;
  if (a.start != b.start) return a.start < b.start;
  return a.end < b.end;
}

bool region_equal(const core::AddrRegion& a, const core::AddrRegion& b) {
  return a.name == b.name && a.start == b.start && a.end == b.end;
}

}  // namespace

std::size_t RegionUnion::add(std::vector<core::AddrRegion> regions) {
  tables_.push_back(std::move(regions));
  built_ = false;
  return tables_.size() - 1;
}

void RegionUnion::build() const {
  if (built_) return;
  union_.clear();
  for (const auto& table : tables_) union_.insert(union_.end(), table.begin(), table.end());
  std::sort(union_.begin(), union_.end(), region_less);
  union_.erase(std::unique(union_.begin(), union_.end(), region_equal), union_.end());
  built_ = true;
}

const std::vector<core::AddrRegion>& RegionUnion::regions() const {
  build();
  return union_;
}

std::vector<std::int32_t> RegionUnion::mapping(std::size_t handle) const {
  build();
  std::vector<std::int32_t> mapping;
  const auto& table = tables_[handle];
  mapping.reserve(table.size());
  for (const auto& r : table) {
    const auto it = std::lower_bound(union_.begin(), union_.end(), r, region_less);
    // build() guarantees every table entry is present in the union.
    mapping.push_back(static_cast<std::int32_t>(it - union_.begin()));
  }
  return mapping;
}

}  // namespace nmo::store
