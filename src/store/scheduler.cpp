#include "store/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/profiler.hpp"

namespace nmo::store {

std::string_view to_string(AdmissionPolicy policy) noexcept {
  switch (policy) {
    case AdmissionPolicy::kBlock:
      return "block";
    case AdmissionPolicy::kReject:
      return "reject";
    case AdmissionPolicy::kShedOldest:
      return "shed-oldest";
  }
  return "?";
}

std::optional<AdmissionPolicy> parse_admission_policy(std::string_view text) {
  if (text == "block") return AdmissionPolicy::kBlock;
  if (text == "reject") return AdmissionPolicy::kReject;
  if (text == "shed-oldest") return AdmissionPolicy::kShedOldest;
  return std::nullopt;
}

std::uint32_t default_max_workers() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

Scheduler::Scheduler(SchedulerConfig config) : config_(config) {
  if (config_.max_workers == 0) {
    throw std::invalid_argument(
        "SchedulerConfig::max_workers is 0: a pool with no workers can never "
        "drain its queue (use default_max_workers() for the hardware default)");
  }
  stats_.workers = config_.max_workers;
  workers_.reserve(config_.max_workers);
  for (std::uint32_t i = 0; i < config_.max_workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  // Workers drain whatever is still queued before exiting; blocked
  // submitters wake and fail their submission.
  work_ready_.notify_all();
  space_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void Scheduler::mark_terminal_locked(TaskId id) {
  // Retention 0 means the caller owns the ledger via forget(); tracking
  // terminal ids anyway would just recreate the per-submission leak in
  // this deque.
  if (config_.status_retention == 0) return;
  terminal_ids_.push_back(id);
  while (terminal_ids_.size() > config_.status_retention) {
    // Oldest-terminal first; an id the caller already forgot() erases to a
    // no-op, so the deque itself stays bounded by the retention count.
    statuses_.erase(terminal_ids_.front());
    terminal_ids_.pop_front();
  }
}

void Scheduler::shed_oldest_locked() {
  // rbegin() is the lowest priority class (map is ordered descending);
  // front() is its oldest entry.
  auto lowest = queue_.rbegin();
  Entry victim = std::move(lowest->second.front());
  lowest->second.pop_front();
  if (lowest->second.empty()) queue_.erase(lowest->first);
  --queued_;
  statuses_[victim.id].state = core::SessionState::kShed;
  ++stats_.shed;
  mark_terminal_locked(victim.id);
}

std::optional<TaskId> Scheduler::submit(Task task, std::uint8_t priority) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Queue wait is measured from here - including any time the submitter
  // spends blocked on a full queue below, which is exactly when the wait
  // numbers matter.
  const auto submitted_at = std::chrono::steady_clock::now();
  ++stats_.submitted;
  if (config_.queue_depth > 0 && queued_ >= config_.queue_depth) {
    switch (config_.policy) {
      case AdmissionPolicy::kBlock:
        space_ready_.wait(lock,
                          [this] { return stopping_ || queued_ < config_.queue_depth; });
        break;
      case AdmissionPolicy::kReject:
        ++stats_.rejected;
        return std::nullopt;
      case AdmissionPolicy::kShedOldest:
        // Shedding favors fresh *and higher-priority* work: a submission
        // that outranks (or ties) the lowest queued class displaces that
        // class's oldest entry; one that ranks below everything queued is
        // rejected instead - otherwise a burst of low-priority jobs could
        // drain every queued high-priority session.
        if (queue_.rbegin()->first > priority) {
          ++stats_.rejected;
          return std::nullopt;
        }
        shed_oldest_locked();
        break;
    }
  }
  if (stopping_) {
    ++stats_.rejected;
    return std::nullopt;
  }

  Entry entry;
  entry.id = next_id_++;
  entry.task = std::move(task);
  entry.priority = priority;
  entry.submitted_at = submitted_at;

  TaskStatus status;
  status.id = entry.id;
  status.priority = priority;
  status.state = core::SessionState::kQueued;
  statuses_.emplace(entry.id, status);

  queue_[priority].push_back(std::move(entry));
  ++queued_;
  stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, queued_);
  work_ready_.notify_one();
  return status.id;
}

void Scheduler::worker_loop(std::uint32_t worker_index) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [this] { return stopping_ || queued_ > 0; });
    if (queued_ == 0) {
      if (stopping_) return;
      continue;
    }

    // Highest priority class first (map ordered descending), FIFO within.
    auto highest = queue_.begin();
    Entry entry = std::move(highest->second.front());
    highest->second.pop_front();
    if (highest->second.empty()) queue_.erase(highest->first);
    --queued_;
    space_ready_.notify_one();

    const auto wait_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - entry.submitted_at)
            .count());
    TaskStatus& status = statuses_[entry.id];
    status.state = core::SessionState::kAdmitted;
    status.queue_wait_ns = wait_ns;
    status.worker = worker_index;
    ++stats_.admitted;
    stats_.queue_wait_ns_total += wait_ns;
    stats_.queue_wait_ns_max = std::max(stats_.queue_wait_ns_max, wait_ns);
    ++running_;
    stats_.peak_occupancy = std::max(stats_.peak_occupancy, running_);
    status.state = core::SessionState::kRunning;
    const TaskStatus snapshot = status;

    lock.unlock();
    // Worker hygiene: a fresh task must never observe a profiler binding
    // left on this thread by a previous session (ProfileSession restores
    // its binding via RAII, but a task calling set_active_profiler
    // directly could leak one).
    core::set_active_profiler(nullptr);
    bool failed = false;
    try {
      entry.task(snapshot);
    } catch (...) {
      // Contain the failure to this task: the worker (and the pool) keeps
      // serving; run_sessions reports the error through SessionResult.
      failed = true;
    }
    core::set_active_profiler(nullptr);
    lock.lock();

    --running_;
    TaskStatus& done = statuses_[entry.id];
    done.state = failed ? core::SessionState::kFailed : core::SessionState::kDone;
    if (failed) {
      ++stats_.failed;
    } else {
      ++stats_.completed;
    }
    mark_terminal_locked(entry.id);
    if (queued_ == 0 && running_ == 0) idle_.notify_all();
  }
}

void Scheduler::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queued_ == 0 && running_ == 0; });
}

std::optional<TaskStatus> Scheduler::status(TaskId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = statuses_.find(id);
  if (it == statuses_.end()) return std::nullopt;
  return it->second;
}

bool Scheduler::forget(TaskId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = statuses_.find(id);
  if (it == statuses_.end()) return false;
  switch (it->second.state) {
    case core::SessionState::kDone:
    case core::SessionState::kFailed:
    case core::SessionState::kShed:
    case core::SessionState::kRejected:
      statuses_.erase(it);
      return true;
    case core::SessionState::kQueued:
    case core::SessionState::kAdmitted:
    case core::SessionState::kRunning:
      return false;
  }
  return false;
}

std::size_t Scheduler::status_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return statuses_.size();
}

SchedulerStats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace nmo::store
