#include "store/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/profiler.hpp"

namespace nmo::store {

namespace {

/// Log2 bucket of a queue-wait sample (bucket b holds waits whose
/// bit_width is b, so the bucket upper bound is 2^b - 1).
std::size_t wait_bucket(std::uint64_t wait_ns) noexcept {
  return std::min<std::size_t>(std::bit_width(wait_ns), 63);
}

/// Quantile estimate from a log2 histogram: the upper bound of the bucket
/// containing the q-th sample (within 2x of the true value).
std::uint64_t hist_quantile(const std::array<std::uint64_t, 64>& hist, double q) noexcept {
  std::uint64_t total = 0;
  for (const auto v : hist) total += v;
  if (total == 0) return 0;
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < hist.size(); ++b) {
    cum += hist[b];
    if (cum >= target) return b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
  }
  return (std::uint64_t{1} << 63) - 1;
}

}  // namespace

std::string_view to_string(AdmissionPolicy policy) noexcept {
  switch (policy) {
    case AdmissionPolicy::kBlock:
      return "block";
    case AdmissionPolicy::kReject:
      return "reject";
    case AdmissionPolicy::kShedOldest:
      return "shed-oldest";
  }
  return "?";
}

std::optional<AdmissionPolicy> parse_admission_policy(std::string_view text) {
  if (text == "block") return AdmissionPolicy::kBlock;
  if (text == "reject") return AdmissionPolicy::kReject;
  if (text == "shed-oldest") return AdmissionPolicy::kShedOldest;
  return std::nullopt;
}

std::uint32_t default_max_workers() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

Scheduler::Scheduler(SchedulerConfig config) : config_(std::move(config)) {
  if (config_.max_workers == 0) {
    throw std::invalid_argument(
        "SchedulerConfig::max_workers is 0: a pool with no workers can never "
        "drain its queue (use default_max_workers() for the hardware default)");
  }
  {
    // No worker exists yet, but the tenant table is guarded state: hold
    // the lock so the registration writes satisfy the locking contract.
    const core::MutexLock lock(mutex_);
    stats_.workers = config_.max_workers;
    stats_.node_admitted.assign(std::max<std::uint32_t>(1, config_.topology.num_nodes()), 0);
    for (const auto& spec : config_.tenants) {
      // First spec wins on a duplicate name; resolve_tenant_locked below
      // would otherwise silently shadow the registered weight.
      if (tenant_ids_.count(spec.name) != 0) continue;
      resolve_tenant_locked(spec.name);
      auto& state = tenants_.back();
      state.spec = spec;
      state.spec.weight = std::max<std::uint32_t>(1, spec.weight);
      state.stride = kStrideScale / state.spec.weight;
      state.stats.weight = state.spec.weight;
    }
  }
  workers_.reserve(config_.max_workers);
  for (std::uint32_t i = 0; i < config_.max_workers; ++i) {
    workers_.push_back(sys::named_thread("nmo-wrk" + std::to_string(i), [this, i] {
      if (config_.pin_workers && config_.topology.multi_node()) {
        sys::pin_current_thread(config_.topology.nodes()[worker_node(i)].cpus);
      }
      worker_loop(i);
    }));
  }
}

Scheduler::~Scheduler() {
  {
    const core::MutexLock lock(mutex_);
    stopping_ = true;
  }
  // Workers drain whatever is still queued before exiting; blocked
  // submitters wake and fail their submission.
  work_ready_.notify_all();
  space_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

std::uint32_t Scheduler::worker_node(std::uint32_t worker_index) const {
  const auto nodes = config_.topology.num_nodes();
  return nodes > 1 ? worker_index % nodes : 0;
}

TenantId Scheduler::resolve_tenant_locked(std::string_view name) {
  const std::string key(name.empty() ? std::string_view("default") : name);
  const auto it = tenant_ids_.find(key);
  if (it != tenant_ids_.end()) return it->second;
  const auto id = static_cast<TenantId>(tenants_.size());
  tenant_ids_.emplace(key, id);
  TenantState state;
  state.spec.name = key;
  state.stats.name = key;
  state.stats.weight = state.spec.weight;
  state.stats.node_admitted.assign(std::max<std::uint32_t>(1, config_.topology.num_nodes()),
                                   0);
  tenants_.push_back(std::move(state));
  return id;
}

void Scheduler::mark_terminal_locked(TaskId id) {
  // Retention 0 means the caller owns the ledger via forget(); tracking
  // terminal ids anyway would just recreate the per-submission leak in
  // this deque.
  if (config_.status_retention == 0) return;
  terminal_ids_.push_back(id);
  while (terminal_ids_.size() > config_.status_retention) {
    // Oldest-terminal first; an id the caller already forgot() erases to a
    // no-op, so the deque itself stays bounded by the retention count.
    statuses_.erase(terminal_ids_.front());
    terminal_ids_.pop_front();
  }
}

std::optional<std::uint8_t> Scheduler::lowest_class_of_locked(TenantId tenant) const {
  for (auto it = queue_.rbegin(); it != queue_.rend(); ++it) {
    const auto found = it->second.by_tenant.find(tenant);
    if (found != it->second.by_tenant.end() && !found->second.empty()) return it->first;
  }
  return std::nullopt;
}

void Scheduler::shed_entry_locked(std::uint8_t priority, TenantId tenant) {
  auto cls = queue_.find(priority);
  auto dq = cls->second.by_tenant.find(tenant);
  // The victim is the tenant's *oldest submission* in the class (min seq),
  // not the EDF front: shedding exists to favor fresh work, and the
  // deadline-free case must keep the pre-tenant drop-the-oldest behavior.
  const auto victim = std::min_element(
      dq->second.begin(), dq->second.end(),
      [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
  const TaskId victim_id = victim->id;
  dq->second.erase(victim);
  if (dq->second.empty()) cls->second.by_tenant.erase(dq);
  --cls->second.size;
  if (cls->second.by_tenant.empty()) queue_.erase(cls);
  --queued_;
  auto& ten = tenants_[tenant];
  --ten.queued;
  statuses_[victim_id].state = core::SessionState::kShed;
  ++stats_.shed;
  ++ten.stats.shed;
  mark_terminal_locked(victim_id);
}

void Scheduler::shed_from_class_locked(std::uint8_t priority) {
  const auto& cls = queue_.find(priority)->second;
  // Weighted-overage victim selection: the tenant whose queued entries in
  // this class exceed its fair share the most (queued/weight highest; ties
  // go to the lowest tenant id, deterministically).  Under round-robin
  // overload this keeps surviving queue slots proportional to weights.
  TenantId victim = cls.by_tenant.begin()->first;
  std::uint64_t worst = 0;
  for (const auto& [tid, dq] : cls.by_tenant) {
    const auto overage = static_cast<std::uint64_t>(dq.size()) * kStrideScale /
                         tenants_[tid].spec.weight;
    if (overage > worst) {
      worst = overage;
      victim = tid;
    }
  }
  shed_entry_locked(priority, victim);
}

void Scheduler::shed_from_tenant_locked(TenantId tenant) {
  const auto cls = lowest_class_of_locked(tenant);
  if (cls) shed_entry_locked(*cls, tenant);
}

void Scheduler::enqueue_locked(Entry entry) {
  const bool has_home = entry.has_home;
  auto& ten = tenants_[entry.tenant];
  if (ten.queued == 0) {
    // Idle->active: restart at the global pass floor so time spent with an
    // empty queue cannot bank stride credit against active tenants.
    ten.pass = std::max(ten.pass, global_pass_);
  }
  auto& cls = queue_[entry.priority];
  auto& dq = cls.by_tenant[entry.tenant];
  // EDF position within the tenant's deque: earliest deadline first, no
  // deadline sorts last, submission order breaks ties - so a deadline-free
  // workload keeps strict FIFO order (the pre-tenant behavior).
  const auto no_deadline = std::chrono::steady_clock::time_point::max();
  const auto pos = std::upper_bound(
      dq.begin(), dq.end(), entry, [&](const Entry& probe, const Entry& queued) {
        const auto pd = probe.has_deadline ? probe.deadline : no_deadline;
        const auto qd = queued.has_deadline ? queued.deadline : no_deadline;
        if (pd != qd) return pd < qd;
        return probe.seq < queued.seq;
      });
  dq.insert(pos, std::move(entry));
  ++cls.size;
  ++queued_;
  ++ten.queued;
  stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, queued_);
  ten.stats.peak_queue_depth = std::max(ten.stats.peak_queue_depth, ten.queued);
  if (has_home) {
    // notify_one could wake only a worker on the wrong node, which would
    // park on the placement window while the matching worker sleeps on;
    // wake everyone and let eligibility sort it out.
    work_ready_.notify_all();
  } else {
    work_ready_.notify_one();
  }
}

std::optional<TaskId> Scheduler::submit_locked(core::MutexLock& lock, Task task,
                                               const SubmitOptions& options,
                                               bool admission_exempt) {
  // Queue wait is measured from here - including any time the submitter
  // spends blocked on a full queue below, which is exactly when the wait
  // numbers matter.
  const auto submitted_at = std::chrono::steady_clock::now();
  const TenantId tenant = resolve_tenant_locked(options.tenant);
  ++stats_.submitted;
  ++tenants_[tenant].stats.submitted;
  if (admission_exempt) {
    ++stats_.requeued;
    ++tenants_[tenant].stats.requeued;
  }

  const auto tenant_cap = tenants_[tenant].spec.queue_cap;
  const auto reject = [&]() -> std::optional<TaskId> {
    ++stats_.rejected;
    ++tenants_[tenant].stats.rejected;
    return std::nullopt;
  };

  if (!admission_exempt) {
    const auto tenant_full = [&] {
      return tenant_cap > 0 && tenants_[tenant].queued >= tenant_cap;
    };
    const auto global_full = [&] {
      return config_.queue_depth > 0 && queued_ >= config_.queue_depth;
    };
    switch (config_.policy) {
      case AdmissionPolicy::kBlock:
        space_ready_.wait(lock, [&]() NMO_REQUIRES(mutex_) {
          return stopping_ || (!tenant_full() && !global_full());
        });
        break;
      case AdmissionPolicy::kReject:
        if (tenant_full() || global_full()) return reject();
        break;
      case AdmissionPolicy::kShedOldest:
        // Shedding favors fresh *and higher-priority* work: a submission
        // that outranks (or ties) the victim class displaces an entry;
        // one that ranks below everything eligible is rejected instead -
        // otherwise a burst of low-priority jobs could drain every queued
        // high-priority session.
        if (tenant_full()) {
          // The tenant's own cap is the limit, so the victim must come
          // from the same tenant (shedding a peer would let one tenant
          // evict another to exceed its cap).
          const auto own_lowest = lowest_class_of_locked(tenant);
          if (own_lowest && *own_lowest > options.priority) return reject();
          shed_from_tenant_locked(tenant);
        }
        if (global_full()) {
          if (queue_.rbegin()->first > options.priority) return reject();
          shed_from_class_locked(queue_.rbegin()->first);
        }
        break;
    }
  }
  if (stopping_) return reject();

  Entry entry;
  entry.id = next_id_++;
  entry.task = std::move(task);
  entry.priority = options.priority;
  entry.tenant = tenant;
  entry.seq = next_seq_++;
  entry.submitted_at = submitted_at;
  if (options.deadline_ns > 0) {
    entry.has_deadline = true;
    entry.deadline = submitted_at + std::chrono::nanoseconds(options.deadline_ns);
  }
  // The home node is a soft hint, and only meaningful against a multi-node
  // topology: single-node (or topology-free) pools treat every submission
  // as node-agnostic, as does a hint that names a node the topology does
  // not have.
  if (options.home_node && config_.topology.multi_node() &&
      *options.home_node < config_.topology.num_nodes()) {
    entry.has_home = true;
    entry.home_node = *options.home_node;
    entry.placement_deadline =
        submitted_at + std::chrono::nanoseconds(config_.placement_wait_ns);
  }

  TaskStatus status;
  status.id = entry.id;
  status.priority = options.priority;
  status.tenant = tenant;
  status.state = core::SessionState::kQueued;
  statuses_.emplace(entry.id, status);

  enqueue_locked(std::move(entry));
  return status.id;
}

std::optional<TaskId> Scheduler::submit(Task task, const SubmitOptions& options) {
  core::MutexLock lock(mutex_);
  return submit_locked(lock, std::move(task), options, /*admission_exempt=*/false);
}

std::optional<TaskId> Scheduler::submit(Task task, std::uint8_t priority) {
  SubmitOptions options;
  options.priority = priority;
  return submit(std::move(task), options);
}

std::optional<TaskId> Scheduler::requeue(Task task, const SubmitOptions& options) {
  core::MutexLock lock(mutex_);
  return submit_locked(lock, std::move(task), options, /*admission_exempt=*/true);
}

void Scheduler::worker_loop(std::uint32_t worker_index) {
  const std::uint32_t my_node = worker_node(worker_index);
  core::MutexLock lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [this]() NMO_REQUIRES(mutex_) { return stopping_ || queued_ > 0; });
    if (queued_ == 0) {
      if (stopping_) return;
      continue;
    }

    // Placement eligibility: an entry with a home node waits for a worker
    // on that node until its placement deadline; after the deadline (or
    // when the pool is stopping) any worker takes it - the hint is soft
    // and can never starve an entry.  Entries without a home node are
    // always eligible, so a placement-free pool picks exactly as before.
    const auto pick_now = std::chrono::steady_clock::now();
    const auto eligible = [&](const Entry& e) NMO_REQUIRES(mutex_) {
      return !e.has_home || stopping_ || e.home_node == my_node ||
             e.placement_deadline <= pick_now;
    };

    // Highest priority class first (map ordered descending); within it,
    // stride scheduling across the tenants with an eligible entry: the
    // lowest pass (ties to the lowest tenant id) is the most under-served
    // relative to its weight and runs next.  A class whose entries are all
    // home-pinned elsewhere is skipped rather than idling this worker -
    // the priority inversion is bounded by placement_wait_ns.
    auto cls_it = queue_.begin();
    auto pick = cls_it->second.by_tenant.end();
    std::deque<Entry>::iterator pick_entry;
    bool found = false;
    for (; cls_it != queue_.end(); ++cls_it) {
      auto& tenant_map = cls_it->second.by_tenant;
      for (auto it = tenant_map.begin(); it != tenant_map.end(); ++it) {
        // First eligible in deque order keeps EDF/FIFO within the tenant.
        const auto e = std::find_if(it->second.begin(), it->second.end(), eligible);
        if (e == it->second.end()) continue;
        if (!found || tenants_[it->first].pass < tenants_[pick->first].pass) {
          pick = it;
          pick_entry = e;
          found = true;
        }
      }
      if (found) break;
    }
    if (!found) {
      // Everything queued is home-pinned to other nodes and still inside
      // its placement window: sleep until the earliest window expires (or
      // a notify - new work, a matching worker, shutdown) and re-evaluate.
      auto earliest = std::chrono::steady_clock::time_point::max();
      for (const auto& [prio, cls] : queue_) {
        for (const auto& [tid, dq] : cls.by_tenant) {
          for (const auto& e : dq) earliest = std::min(earliest, e.placement_deadline);
        }
      }
      work_ready_.wait_until(lock, earliest);
      continue;
    }
    auto& by_tenant = cls_it->second.by_tenant;
    Entry entry = std::move(*pick_entry);
    pick->second.erase(pick_entry);
    if (pick->second.empty()) by_tenant.erase(pick);
    --cls_it->second.size;
    if (by_tenant.empty()) queue_.erase(cls_it);
    --queued_;
    auto& ten = tenants_[entry.tenant];
    --ten.queued;
    space_ready_.notify_all();

    const auto now = std::chrono::steady_clock::now();
    if (entry.has_deadline && entry.deadline < now) {
      // Deadline passed while the entry was still queued: terminal
      // kExpired without ever occupying this worker (the whole point of
      // admitting by deadline - a session nobody can use anymore must not
      // displace ones that still can).
      statuses_[entry.id].state = core::SessionState::kExpired;
      ++stats_.expired;
      ++ten.stats.expired;
      mark_terminal_locked(entry.id);
      if (queued_ == 0 && running_ == 0) idle_.notify_all();
      continue;
    }

    // Stride charge: this admission consumes kStrideScale/weight of the
    // tenant's virtual time.
    ten.pass += ten.stride;
    global_pass_ = std::max(global_pass_, ten.pass);

    const auto wait_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - entry.submitted_at)
            .count());
    TaskStatus& status = statuses_[entry.id];
    status.state = core::SessionState::kAdmitted;
    status.queue_wait_ns = wait_ns;
    status.worker = worker_index;
    status.node = my_node;
    if (entry.has_home) {
      // Billed at admission: a home-node entry either landed on its node
      // or fell back cross-node after its placement window closed.
      if (entry.home_node == my_node) {
        ++stats_.placement_local;
      } else {
        ++stats_.placement_misses;
      }
    }
    ++stats_.node_admitted[my_node];
    ++ten.stats.node_admitted[my_node];
    ++stats_.admitted;
    stats_.queue_wait_ns_total += wait_ns;
    stats_.queue_wait_ns_max = std::max(stats_.queue_wait_ns_max, wait_ns);
    ++wait_hist_[wait_bucket(wait_ns)];
    ++ten.stats.admitted;
    ten.stats.queue_wait_ns_total += wait_ns;
    ten.stats.queue_wait_ns_max = std::max(ten.stats.queue_wait_ns_max, wait_ns);
    ++ten.wait_hist[wait_bucket(wait_ns)];
    ++running_;
    stats_.peak_occupancy = std::max(stats_.peak_occupancy, running_);
    status.state = core::SessionState::kRunning;
    const TaskStatus snapshot = status;
    const TenantId tenant_index = entry.tenant;

    lock.unlock();
    // Worker hygiene: a fresh task must never observe a profiler binding
    // left on this thread by a previous session (ProfileSession restores
    // its binding via RAII, but a task calling set_active_profiler
    // directly could leak one).
    core::set_active_profiler(nullptr);
    bool failed = false;
    try {
      entry.task(snapshot);
    } catch (...) {
      // Contain the failure to this task: the worker (and the pool) keeps
      // serving; run_sessions reports the error through SessionResult.
      failed = true;
    }
    core::set_active_profiler(nullptr);
    lock.lock();

    --running_;
    TaskStatus& done = statuses_[entry.id];
    done.state = failed ? core::SessionState::kFailed : core::SessionState::kDone;
    if (failed) {
      ++stats_.failed;
      ++tenants_[tenant_index].stats.failed;
    } else {
      ++stats_.completed;
      ++tenants_[tenant_index].stats.completed;
    }
    mark_terminal_locked(entry.id);
    if (queued_ == 0 && running_ == 0) idle_.notify_all();
  }
}

void Scheduler::wait_idle() {
  core::MutexLock lock(mutex_);
  idle_.wait(lock, [this]() NMO_REQUIRES(mutex_) { return queued_ == 0 && running_ == 0; });
}

std::optional<TaskStatus> Scheduler::status(TaskId id) const {
  const core::MutexLock lock(mutex_);
  const auto it = statuses_.find(id);
  if (it == statuses_.end()) return std::nullopt;
  return it->second;
}

bool Scheduler::forget(TaskId id) {
  const core::MutexLock lock(mutex_);
  const auto it = statuses_.find(id);
  if (it == statuses_.end()) return false;
  switch (it->second.state) {
    case core::SessionState::kDone:
    case core::SessionState::kFailed:
    case core::SessionState::kShed:
    case core::SessionState::kRejected:
    case core::SessionState::kExpired:
      statuses_.erase(it);
      return true;
    case core::SessionState::kQueued:
    case core::SessionState::kAdmitted:
    case core::SessionState::kRunning:
      return false;
  }
  return false;
}

std::size_t Scheduler::status_count() const {
  const core::MutexLock lock(mutex_);
  return statuses_.size();
}

SchedulerStats Scheduler::stats() const {
  const core::MutexLock lock(mutex_);
  SchedulerStats snapshot = stats_;
  snapshot.queue_wait_p50_ns = hist_quantile(wait_hist_, 0.50);
  snapshot.queue_wait_p99_ns = hist_quantile(wait_hist_, 0.99);
  snapshot.tenants.reserve(tenants_.size());
  for (const auto& state : tenants_) {
    TenantStats row = state.stats;
    row.name = state.spec.name;
    row.weight = state.spec.weight;
    row.queued = state.queued;
    row.queue_wait_p50_ns = hist_quantile(state.wait_hist, 0.50);
    row.queue_wait_p99_ns = hist_quantile(state.wait_hist, 0.99);
    snapshot.tenants.push_back(std::move(row));
  }
  return snapshot;
}

}  // namespace nmo::store
