// Bounded session scheduler with admission control (ROADMAP: "session
// scheduler").
//
// run_sessions used to spawn one std::thread per ProfileSession, which
// collapses under fleet-scale job counts: a thousand queued jobs meant a
// thousand live threads contending for the same cores.  The Scheduler
// treats profiled jobs as *admitted workload* instead: a fixed pool of
// `max_workers` worker threads pulls from a priority-aware admission
// queue with a configurable depth limit.  What happens when the queue is
// full is the admission policy:
//
//   kBlock      submit() waits for space (backpressure on the producer),
//   kReject     submit() fails immediately (load shedding at the door),
//   kShedOldest the oldest entry of the lowest priority class is dropped
//               to make room (favor fresh, high-priority work); a
//               submission ranked below everything queued is rejected
//               instead of displacing its betters.
//
// Every task moves through the lifecycle of core::SessionState:
// queued -> admitted -> running -> done/failed, with rejected/shed as the
// terminal admission outcomes.  SchedulerStats aggregates what the pool
// did: admissions, rejections, queue-wait time, peak queue depth and peak
// worker occupancy - the numbers run_sessions persists to the store root
// and nmo-trace prints back.
//
// Worker threads are reused across sessions, so the thread-local
// active-profiler binding of the C annotation API must not leak between
// jobs: the worker resets the binding around every task (belt) and
// ProfileSession::profile restores it via RAII even on exceptions
// (suspenders).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/session.hpp"

namespace nmo::store {

/// What submit() does when the admission queue is at its depth limit.
enum class AdmissionPolicy : std::uint8_t {
  kBlock = 0,  ///< Wait for a queue slot (producer backpressure).
  kReject,     ///< Fail the submission immediately.
  /// Drop the oldest queued entry of the lowest priority class - unless
  /// the incoming task ranks below every queued class, in which case the
  /// incoming task is rejected instead.
  kShedOldest,
};

[[nodiscard]] std::string_view to_string(AdmissionPolicy policy) noexcept;
/// Parses "block" / "reject" / "shed-oldest" (CLI and example flags).
[[nodiscard]] std::optional<AdmissionPolicy> parse_admission_policy(std::string_view text);

/// Worker count used when SchedulerConfig is defaulted: the hardware
/// concurrency, never less than 1.
[[nodiscard]] std::uint32_t default_max_workers() noexcept;

struct SchedulerConfig {
  /// Size of the worker pool.  Explicit 0 is a configuration error
  /// (the Scheduler constructor throws std::invalid_argument).
  std::uint32_t max_workers = default_max_workers();
  /// Admission queue depth limit (queued, not yet admitted).  0 = unbounded.
  std::size_t queue_depth = 0;
  AdmissionPolicy policy = AdmissionPolicy::kBlock;
  /// How many *terminal* (done/failed/shed) task statuses the ledger keeps
  /// before the oldest are reaped automatically.  Bounds the status map of
  /// a long-lived pool whose callers never forget() - without it the pool
  /// leaks one TaskStatus per submission forever.  0 = keep everything
  /// (the caller promises to forget()).  Live tasks are never reaped.
  std::size_t status_retention = 1024;
};

using TaskId = std::uint64_t;

/// Snapshot of one task's scheduling outcome.
struct TaskStatus {
  TaskId id = 0;
  core::SessionState state = core::SessionState::kQueued;
  std::uint8_t priority = 0;
  std::uint64_t queue_wait_ns = 0;  ///< submit -> admitted (0 until admitted).
  std::uint32_t worker = 0;         ///< Pool slot that ran it (valid once admitted).
};

/// Aggregate report of everything the pool did.
struct SchedulerStats {
  std::uint32_t workers = 0;
  std::uint64_t submitted = 0;  ///< All submit() calls (admitted + rejected + shed).
  std::uint64_t admitted = 0;   ///< Handed to a worker.
  std::uint64_t rejected = 0;   ///< Refused at the door (kReject / stopped pool).
  std::uint64_t shed = 0;       ///< Dropped from the queue (kShedOldest).
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t queue_wait_ns_total = 0;  ///< Sum over admitted tasks.
  std::uint64_t queue_wait_ns_max = 0;
  std::size_t peak_queue_depth = 0;  ///< Most tasks ever waiting at once.
  std::uint32_t peak_occupancy = 0;  ///< Most workers ever running at once.
};

class Scheduler {
 public:
  /// The work unit; receives the task's own admission snapshot (id, queue
  /// wait, worker slot).  A task that throws is recorded as kFailed - the
  /// exception is contained and the worker keeps serving.
  using Task = std::function<void(const TaskStatus&)>;

  /// Starts `config.max_workers` workers.  Throws std::invalid_argument on
  /// an explicit zero-worker configuration.
  explicit Scheduler(SchedulerConfig config = {});
  /// Drains the queue (every admitted task completes) and joins the pool.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Submits a task at `priority` (higher runs first; FIFO within a
  /// class).  Returns the task id, or std::nullopt when admission control
  /// turned the task away (kReject with a full queue, or a stopping pool).
  std::optional<TaskId> submit(Task task, std::uint8_t priority = 0);

  /// Blocks until the queue is empty and no worker is running a task.
  void wait_idle();

  /// Status snapshot of a previously submitted task (including shed ones).
  /// Terminal statuses are retained until forget() or until
  /// SchedulerConfig::status_retention reaps them (oldest-terminal first),
  /// so a long-lived pool stays bounded even when callers never query.
  [[nodiscard]] std::optional<TaskStatus> status(TaskId id) const;

  /// Drops a *terminal* (done/failed/shed) task's status entry, bounding
  /// the ledger for long-lived pools.  A task still queued or running is
  /// kept (returns false).
  bool forget(TaskId id);
  /// Entries currently in the status ledger (terminal + live); the number
  /// status_retention bounds.  For monitoring and tests.
  [[nodiscard]] std::size_t status_count() const;
  [[nodiscard]] SchedulerStats stats() const;
  [[nodiscard]] const SchedulerConfig& config() const { return config_; }

 private:
  struct Entry {
    TaskId id = 0;
    Task task;
    std::uint8_t priority = 0;
    std::chrono::steady_clock::time_point submitted_at;
  };

  void worker_loop(std::uint32_t worker_index);
  /// Drops the oldest entry of the lowest-priority class (queue lock held).
  void shed_oldest_locked();
  /// Records `id` as terminal and reaps the oldest terminal statuses past
  /// the retention bound (queue lock held).
  void mark_terminal_locked(TaskId id);

  SchedulerConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable work_ready_;   ///< Queue non-empty or stopping.
  std::condition_variable space_ready_;  ///< Queue below its depth limit.
  std::condition_variable idle_;         ///< Queue empty and pool quiescent.
  /// Priority classes, highest first; FIFO deque within a class.
  std::map<std::uint8_t, std::deque<Entry>, std::greater<>> queue_;
  std::unordered_map<TaskId, TaskStatus> statuses_;
  /// Terminal task ids in the order they became terminal - the reap queue
  /// that keeps statuses_ bounded by status_retention.  May hold ids the
  /// caller already forgot(); reaping those is a harmless no-op.
  std::deque<TaskId> terminal_ids_;
  std::vector<std::thread> workers_;
  TaskId next_id_ = 1;
  std::size_t queued_ = 0;
  std::uint32_t running_ = 0;
  bool stopping_ = false;
  SchedulerStats stats_;
};

}  // namespace nmo::store
