// Multi-tenant bounded session scheduler with admission control (ROADMAP:
// "multi-tenant scheduling").
//
// run_sessions used to spawn one std::thread per ProfileSession, which
// collapses under fleet-scale job counts: a thousand queued jobs meant a
// thousand live threads contending for the same cores.  The Scheduler
// treats profiled jobs as *admitted workload* instead: a fixed pool of
// `max_workers` worker threads pulls from a priority-aware admission
// queue with a configurable depth limit.  What happens when the queue is
// full is the admission policy:
//
//   kBlock      submit() waits for space (backpressure on the producer),
//   kReject     submit() fails immediately (load shedding at the door),
//   kShedOldest a queued entry is dropped to make room (favor fresh,
//               high-priority work); a submission ranked below everything
//               queued is rejected instead of displacing its betters.
//
// A shared always-on profiler serves many *tenants*, so admission is
// weighted-fair rather than globally FIFO:
//
//  * every submission belongs to a tenant (default: "default"); tenants
//    carry a weight and an optional per-tenant queue-depth cap;
//  * workers pick the next task by priority class first, then by stride
//    scheduling across the tenants queued in that class (each admission
//    advances the tenant's virtual "pass" by kStrideScale/weight; the
//    lowest pass runs next), so sustained overload divides worker
//    throughput proportionally to weight and no tenant starves;
//  * kShedOldest sheds from the tenant most over its weighted share of the
//    lowest priority class, so overload sheds proportionally instead of
//    punishing whoever happened to submit first.
//
// Within one tenant and priority class, ordering is EDF: a submission may
// carry a relative deadline, earliest deadline runs first, and an entry
// whose deadline passes while it is still queued becomes terminal
// kExpired at pop time - it never occupies a worker.  Tasks without
// deadlines keep strict FIFO order (the pre-tenant behavior: a defaulted
// config with one tenant, no deadlines and no budgets schedules exactly
// like the old single-queue pool).
//
// Every task moves through the lifecycle of core::SessionState:
// queued -> admitted -> running -> done/failed, with rejected/shed/expired
// as the terminal admission outcomes.  SchedulerStats aggregates what the
// pool did - admissions, rejections, queue-wait time and quantiles, peak
// depth/occupancy - plus one TenantStats row per tenant; run_sessions
// persists both to the store root and nmo-trace prints them back.
//
// Worker threads are reused across sessions, so the thread-local
// active-profiler binding of the C annotation API must not leak between
// jobs: the worker resets the binding around every task (belt) and
// ProfileSession::profile restores it via RAII even on exceptions
// (suspenders).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_safety.hpp"
#include "core/session.hpp"
#include "sys/topology.hpp"

namespace nmo::store {

/// What submit() does when the admission queue is at its depth limit.
enum class AdmissionPolicy : std::uint8_t {
  kBlock = 0,  ///< Wait for a queue slot (producer backpressure).
  kReject,     ///< Fail the submission immediately.
  /// Drop a queued entry of the lowest priority class - from the tenant
  /// most over its weighted share, that tenant's oldest submission -
  /// unless the incoming task ranks below every queued class, in which
  /// case the incoming task is rejected instead.
  kShedOldest,
};

[[nodiscard]] std::string_view to_string(AdmissionPolicy policy) noexcept;
/// Parses "block" / "reject" / "shed-oldest" (CLI and example flags).
[[nodiscard]] std::optional<AdmissionPolicy> parse_admission_policy(std::string_view text);

/// Worker count used when SchedulerConfig is defaulted: the hardware
/// concurrency, never less than 1.
[[nodiscard]] std::uint32_t default_max_workers() noexcept;

/// One tenant of the shared pool.  Weight sets the tenant's share of
/// worker throughput under sustained overload (stride scheduling); the cap
/// bounds how much of the queue one tenant can occupy.
struct TenantSpec {
  std::string name = "default";
  std::uint32_t weight = 1;   ///< Fair-share weight (clamped to >= 1).
  std::size_t queue_cap = 0;  ///< Per-tenant queued limit; 0 = no cap.
};

/// Index into SchedulerStats::tenants (registration order; tenants named
/// at submit time but absent from SchedulerConfig::tenants are
/// auto-registered with weight 1).
using TenantId = std::uint32_t;

/// Per-tenant slice of the scheduler's accounting.  Queue-wait quantiles
/// are estimated from 64 log2 buckets (bounded memory; the estimate is the
/// bucket's upper bound, i.e. within 2x of the true value).
struct TenantStats {
  std::string name;
  std::uint32_t weight = 1;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;   ///< Deadline passed while queued.
  std::uint64_t requeued = 0;  ///< Admission-exempt resubmissions.
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t queue_wait_ns_total = 0;
  std::uint64_t queue_wait_ns_max = 0;
  std::uint64_t queue_wait_p50_ns = 0;
  std::uint64_t queue_wait_p99_ns = 0;
  std::size_t queued = 0;  ///< Waiting right now (snapshot).
  std::size_t peak_queue_depth = 0;
  std::vector<std::uint64_t> node_admitted;  ///< Admissions per worker node.
};

struct SchedulerConfig {
  /// Size of the worker pool.  Explicit 0 is a configuration error
  /// (the Scheduler constructor throws std::invalid_argument).
  std::uint32_t max_workers = default_max_workers();
  /// Admission queue depth limit (queued, not yet admitted).  0 = unbounded.
  std::size_t queue_depth = 0;
  AdmissionPolicy policy = AdmissionPolicy::kBlock;
  /// How many *terminal* (done/failed/shed/expired) task statuses the
  /// ledger keeps before the oldest are reaped automatically.  Bounds the
  /// status map of a long-lived pool whose callers never forget() -
  /// without it the pool leaks one TaskStatus per submission forever.
  /// 0 = keep everything (the caller promises to forget()).  Live tasks
  /// are never reaped.
  std::size_t status_retention = 1024;
  /// Tenant table (weighted-fair admission).  Empty = one implicit
  /// "default" tenant with weight 1, which reproduces the pre-tenant
  /// scheduling order exactly.
  std::vector<TenantSpec> tenants;
  /// Placement topology: worker i belongs to node `i % num_nodes`, and a
  /// submission carrying SubmitOptions::home_node prefers workers on that
  /// node.  Empty (default) disables placement entirely - every submission
  /// is node-agnostic and scheduling order is exactly the pre-topology
  /// behavior.
  sys::CpuTopology topology;
  /// Pin each worker thread to its node's cpu set (advisory; only on
  /// multi-node topologies).  Off by default: the sim-backed tests and
  /// benches want deterministic scheduling, not host affinity.
  bool pin_workers = false;
  /// How long a home-node submission may wait for a matching worker before
  /// any worker may take it (the soft hint's bound; never starves).  A
  /// cross-node fallback admission is billed as placement_misses.
  std::uint64_t placement_wait_ns = 2'000'000;
};

using TaskId = std::uint64_t;

/// Snapshot of one task's scheduling outcome.
struct TaskStatus {
  TaskId id = 0;
  core::SessionState state = core::SessionState::kQueued;
  std::uint8_t priority = 0;
  TenantId tenant = 0;              ///< Index into SchedulerStats::tenants.
  std::uint64_t queue_wait_ns = 0;  ///< submit -> admitted (0 until admitted).
  std::uint32_t worker = 0;         ///< Pool slot that ran it (valid once admitted).
  std::uint32_t node = 0;  ///< Node of that worker (0 without a topology).
};

/// Aggregate report of everything the pool did.
struct SchedulerStats {
  std::uint32_t workers = 0;
  std::uint64_t submitted = 0;  ///< All submit() calls (admitted + rejected + shed).
  std::uint64_t admitted = 0;   ///< Handed to a worker.
  std::uint64_t rejected = 0;   ///< Refused at the door (kReject / stopped pool).
  std::uint64_t shed = 0;       ///< Dropped from the queue (kShedOldest).
  std::uint64_t expired = 0;    ///< Deadline passed while queued (never ran).
  std::uint64_t requeued = 0;   ///< Admission-exempt resubmissions (requeue()).
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t queue_wait_ns_total = 0;  ///< Sum over admitted tasks.
  std::uint64_t queue_wait_ns_max = 0;
  std::uint64_t queue_wait_p50_ns = 0;  ///< Log2-bucket estimate (<= 2x true).
  std::uint64_t queue_wait_p99_ns = 0;
  std::size_t peak_queue_depth = 0;  ///< Most tasks ever waiting at once.
  std::uint32_t peak_occupancy = 0;  ///< Most workers ever running at once.
  // Topology placement accounting (all zero when SchedulerConfig::topology
  // is empty or no submission carried a home node).
  std::uint64_t placement_local = 0;   ///< Home-node tasks admitted on their node.
  std::uint64_t placement_misses = 0;  ///< Home-node tasks that fell back cross-node.
  std::vector<std::uint64_t> node_admitted;  ///< Admissions per worker node.
  std::vector<TenantStats> tenants;  ///< One row per tenant (registration order).
};

/// Per-submission scheduling knobs (the Scheduler-level half of the
/// store::RunOptions / JobLimits surface).
struct SubmitOptions {
  std::uint8_t priority = 0;  ///< Higher runs first.
  std::string tenant;         ///< Tenant name; empty = "default".
  /// Relative deadline: the task must be *admitted* within this many
  /// nanoseconds of submission or it becomes terminal kExpired at pop time
  /// (EDF ordering within its priority class).  0 = no deadline.
  std::uint64_t deadline_ns = 0;
  /// Preferred topology node (soft hint).  With a multi-node
  /// SchedulerConfig::topology, workers on this node pick the task first;
  /// after SchedulerConfig::placement_wait_ns any worker takes it (billed
  /// as a placement miss).  Ignored without a topology.
  std::optional<std::uint32_t> home_node;
};

class Scheduler {
 public:
  /// The work unit; receives the task's own admission snapshot (id, queue
  /// wait, worker slot).  A task that throws is recorded as kFailed - the
  /// exception is contained and the worker keeps serving.
  using Task = std::function<void(const TaskStatus&)>;

  /// Starts `config.max_workers` workers.  Throws std::invalid_argument on
  /// an explicit zero-worker configuration.
  explicit Scheduler(SchedulerConfig config = {});
  /// Drains the queue (every admitted task completes) and joins the pool.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Submits a task with full scheduling options.  Returns the task id, or
  /// std::nullopt when admission control turned the task away (kReject
  /// with a full queue/tenant cap, or a stopping pool).
  std::optional<TaskId> submit(Task task, const SubmitOptions& options);

  /// Legacy shorthand: default tenant, no deadline.
  std::optional<TaskId> submit(Task task, std::uint8_t priority = 0);

  /// Admission-exempt resubmission: enqueues even when the queue or the
  /// tenant cap is full (never blocks, sheds or rejects on capacity).
  /// This is how a budget-overrun session re-enters the queue from inside
  /// a worker - a capacity-checked submit there could deadlock a kBlock
  /// pool against itself.  Counted in SchedulerStats::requeued.
  std::optional<TaskId> requeue(Task task, const SubmitOptions& options);

  /// Blocks until the queue is empty and no worker is running a task.
  void wait_idle();

  /// Status snapshot of a previously submitted task (including shed ones).
  /// Terminal statuses are retained until forget() or until
  /// SchedulerConfig::status_retention reaps them (oldest-terminal first),
  /// so a long-lived pool stays bounded even when callers never query.
  [[nodiscard]] std::optional<TaskStatus> status(TaskId id) const;

  /// Drops a *terminal* (done/failed/shed/expired) task's status entry,
  /// bounding the ledger for long-lived pools.  A task still queued or
  /// running is kept (returns false).
  bool forget(TaskId id);
  /// Entries currently in the status ledger (terminal + live); the number
  /// status_retention bounds.  For monitoring and tests.
  [[nodiscard]] std::size_t status_count() const;
  [[nodiscard]] SchedulerStats stats() const;
  [[nodiscard]] const SchedulerConfig& config() const { return config_; }

 private:
  /// Stride-scheduling pass increment for weight 1; higher weights advance
  /// their pass in smaller steps and therefore run proportionally more.
  static constexpr std::uint64_t kStrideScale = std::uint64_t{1} << 20;

  struct Entry {
    TaskId id = 0;
    Task task;
    std::uint8_t priority = 0;
    TenantId tenant = 0;
    std::uint64_t seq = 0;  ///< Global submission order (FIFO tiebreak).
    std::chrono::steady_clock::time_point submitted_at;
    std::chrono::steady_clock::time_point deadline{};
    bool has_deadline = false;
    std::uint32_t home_node = 0;
    bool has_home = false;
    /// When has_home: the instant any worker (not just a home-node one)
    /// may take the entry.
    std::chrono::steady_clock::time_point placement_deadline{};
  };

  /// One priority class: per-tenant EDF deques plus the class total.
  struct ClassQueue {
    std::map<TenantId, std::deque<Entry>> by_tenant;
    std::size_t size = 0;
  };

  struct TenantState {
    TenantSpec spec;
    std::uint64_t stride = kStrideScale;
    std::uint64_t pass = 0;  ///< Stride-scheduling virtual time consumed.
    std::size_t queued = 0;
    std::array<std::uint64_t, 64> wait_hist{};  ///< Log2 buckets, admitted waits.
    TenantStats stats;
  };

  void worker_loop(std::uint32_t worker_index);
  /// Topology node of pool slot `worker_index` (round-robin over nodes;
  /// always 0 without a multi-node topology).
  [[nodiscard]] std::uint32_t worker_node(std::uint32_t worker_index) const;
  std::optional<TaskId> submit_locked(core::MutexLock& lock, Task task,
                                      const SubmitOptions& options, bool admission_exempt)
      NMO_REQUIRES(mutex_);
  /// Registers (or finds) the tenant for `name`; "" maps to "default".
  TenantId resolve_tenant_locked(std::string_view name) NMO_REQUIRES(mutex_);
  /// EDF-position insert plus depth/peak bookkeeping.
  void enqueue_locked(Entry entry) NMO_REQUIRES(mutex_);
  /// Sheds one entry of the given class: victim tenant = most over its
  /// weighted share of that class, victim entry = that tenant's oldest
  /// submission.
  void shed_from_class_locked(std::uint8_t priority) NMO_REQUIRES(mutex_);
  /// Sheds the given tenant's oldest entry from its lowest queued class;
  /// used when a per-tenant cap (not the global depth) is the limit.
  void shed_from_tenant_locked(TenantId tenant) NMO_REQUIRES(mutex_);
  /// Removes one entry by (priority, tenant, min seq) and records it shed.
  void shed_entry_locked(std::uint8_t priority, TenantId tenant) NMO_REQUIRES(mutex_);
  /// The lowest priority class in which `tenant` has queued entries.
  [[nodiscard]] std::optional<std::uint8_t> lowest_class_of_locked(TenantId tenant) const
      NMO_REQUIRES(mutex_);
  /// Records `id` as terminal and reaps the oldest terminal statuses past
  /// the retention bound.
  void mark_terminal_locked(TaskId id) NMO_REQUIRES(mutex_);

  SchedulerConfig config_;
  mutable core::Mutex mutex_{"Scheduler"};
  core::CondVar work_ready_;   ///< Queue non-empty or stopping.
  core::CondVar space_ready_;  ///< Queue/tenant below a depth limit.
  core::CondVar idle_;         ///< Queue empty and pool quiescent.
  /// Priority classes, highest first.
  std::map<std::uint8_t, ClassQueue, std::greater<>> queue_ NMO_GUARDED_BY(mutex_);
  std::vector<TenantState> tenants_ NMO_GUARDED_BY(mutex_);
  std::unordered_map<std::string, TenantId> tenant_ids_ NMO_GUARDED_BY(mutex_);
  std::unordered_map<TaskId, TaskStatus> statuses_ NMO_GUARDED_BY(mutex_);
  /// Terminal task ids in the order they became terminal - the reap queue
  /// that keeps statuses_ bounded by status_retention.  May hold ids the
  /// caller already forgot(); reaping those is a harmless no-op.
  std::deque<TaskId> terminal_ids_ NMO_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_;
  TaskId next_id_ NMO_GUARDED_BY(mutex_) = 1;
  std::uint64_t next_seq_ NMO_GUARDED_BY(mutex_) = 0;
  /// Highest pass any admission has reached; a tenant going idle->active
  /// restarts at this floor so queue absence cannot bank credit.
  std::uint64_t global_pass_ NMO_GUARDED_BY(mutex_) = 0;
  std::size_t queued_ NMO_GUARDED_BY(mutex_) = 0;
  std::uint32_t running_ NMO_GUARDED_BY(mutex_) = 0;
  bool stopping_ NMO_GUARDED_BY(mutex_) = false;
  SchedulerStats stats_ NMO_GUARDED_BY(mutex_);
  /// Pool-wide log2 wait buckets.
  std::array<std::uint64_t, 64> wait_hist_ NMO_GUARDED_BY(mutex_){};
};

}  // namespace nmo::store
