#include "store/block_codec.hpp"

#include <cstring>

namespace nmo::store {
namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kHashBits = 13;
constexpr std::size_t kMaxOffset = 0xffff;
constexpr std::uint32_t kNoCandidate = 0xffffffffu;

std::uint32_t hash4(const std::byte* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_length(std::vector<std::byte>& out, std::size_t extra) {
  while (extra >= 0xff) {
    out.push_back(std::byte{0xff});
    extra -= 0xff;
  }
  out.push_back(static_cast<std::byte>(extra));
}

/// Emits one sequence: `lit_len` literals starting at `lit`, then (unless
/// match_len == 0, the terminal literal-only sequence) a back-reference.
void emit_sequence(std::vector<std::byte>& out, const std::byte* lit, std::size_t lit_len,
                   std::size_t match_len, std::size_t offset) {
  const std::size_t lit_code = lit_len < 15 ? lit_len : 15;
  const std::size_t match_code =
      match_len == 0 ? 0 : (match_len - kMinMatch < 15 ? match_len - kMinMatch : 15);
  out.push_back(static_cast<std::byte>((lit_code << 4) | match_code));
  if (lit_code == 15) put_length(out, lit_len - 15);
  out.insert(out.end(), lit, lit + lit_len);
  if (match_len == 0) return;  // stream ends after the literals
  out.push_back(static_cast<std::byte>(offset & 0xff));
  out.push_back(static_cast<std::byte>(offset >> 8));
  if (match_code == 15) put_length(out, match_len - kMinMatch - 15);
}

}  // namespace

std::vector<std::byte> lz_compress(const std::byte* src, std::size_t n) {
  std::vector<std::byte> out;
  out.reserve(n / 2 + 16);
  std::vector<std::uint32_t> table(std::size_t{1} << kHashBits, kNoCandidate);

  std::size_t pos = 0;
  std::size_t anchor = 0;  // first literal not yet emitted
  while (n >= kMinMatch && pos + kMinMatch <= n) {
    const std::uint32_t h = hash4(src + pos);
    const std::uint32_t cand = table[h];
    table[h] = static_cast<std::uint32_t>(pos);
    if (cand == kNoCandidate || pos - cand > kMaxOffset ||
        std::memcmp(src + cand, src + pos, kMinMatch) != 0) {
      ++pos;
      continue;
    }
    std::size_t len = kMinMatch;
    while (pos + len < n && src[cand + len] == src[pos + len]) ++len;
    emit_sequence(out, src + anchor, pos - anchor, len, pos - cand);
    pos += len;
    anchor = pos;
  }
  emit_sequence(out, src + anchor, n - anchor, 0, 0);
  return out;
}

bool lz_decompress(const std::byte* src, std::size_t src_n, std::byte* dst, std::size_t dst_n) {
  std::size_t in = 0;
  std::size_t out = 0;

  const auto read_length = [&](std::size_t& length) {
    for (;;) {
      if (in >= src_n) return false;
      const auto b = static_cast<std::size_t>(src[in++]);
      length += b;
      if (b < 0xff) return true;
    }
  };

  while (in < src_n) {
    const auto token = static_cast<std::size_t>(src[in++]);
    std::size_t lit_len = token >> 4;
    if (lit_len == 15 && !read_length(lit_len)) return false;
    if (lit_len > src_n - in || lit_len > dst_n - out) return false;
    std::memcpy(dst + out, src + in, lit_len);
    in += lit_len;
    out += lit_len;
    if (in == src_n) break;  // terminal literal-only sequence

    if (src_n - in < 2) return false;
    const std::size_t offset = static_cast<std::size_t>(src[in]) |
                               (static_cast<std::size_t>(src[in + 1]) << 8);
    in += 2;
    if (offset == 0 || offset > out) return false;
    std::size_t match_len = (token & 0xf) + kMinMatch;
    if ((token & 0xf) == 15 && !read_length(match_len)) return false;
    if (match_len > dst_n - out) return false;
    // Byte-wise copy: matches may overlap their own output (run encoding).
    const std::byte* from = dst + (out - offset);
    for (std::size_t i = 0; i < match_len; ++i) dst[out + i] = from[i];
    out += match_len;
  }
  return out == dst_n;
}

}  // namespace nmo::store
