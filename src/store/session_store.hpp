// Multi-session trace storage: the step toward serving many concurrent
// profiled jobs (ROADMAP: "multi-process/multi-session output").
//
// A SessionStore owns one root directory and hands out per-session
// subdirectories with monotonically increasing ids; id assignment is
// mutex-protected so sessions can be created from any thread.  Each
// session's trace lands in its own file (store/trace_file.hpp) with its
// region table beside it (store/region_file.hpp), so N concurrent
// ProfileSessions never contend on output - the per-process analogue of
// upstream NMO's one-trace-per-run layout, with nmo-trace
// (tools/nmo_trace.cpp) as the merge/query companion.
//
// run_sessions(store, jobs, RunOptions) is the single concurrent runner.
// By default it schedules jobs onto the bounded multi-tenant worker pool
// of store/scheduler.hpp: `max_workers` workers pull from a
// priority/deadline/tenant-aware admission queue instead of the old
// thread-per-session spawn (which collapses under fleet-scale job
// counts).  RunOptions carries the whole scheduling surface in one place -
// pool size, admission policy, the tenant table with weights and caps, a
// run-wide trace-format override - while per-job knobs (tenant name,
// priority, deadline, time budget and overrun policy) live on SessionJob /
// JobLimits.  RunOptions{.threaded = true} selects the legacy
// thread-per-session executor, the baseline the scheduler bench and the
// parity tests compare against: both paths must produce byte-identical
// session traces (and therefore byte-identical merges).
//
// Alongside each trace the runner persists a `session.meta` key=value
// file (lifecycle state, worker slot, queue wait, samples, fingerprint,
// tenant, budget outcome, streaming outcome) and, at the store root, a
// `scheduler.meta` with the pool's aggregate SchedulerStats plus one
// `tenant.<i>.*` row group per tenant - what `nmo-trace sessions` prints
// back.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_safety.hpp"
#include "core/config.hpp"
#include "core/session.hpp"
#include "net/block_sender.hpp"
#include "sim/engine.hpp"
#include "store/scheduler.hpp"
#include "store/trace_file.hpp"
#include "workloads/workload.hpp"

namespace nmo::store {

/// One registered session: its id and where its artifacts live.
struct SessionInfo {
  std::uint32_t id = 0;
  std::string name;        ///< Sanitized to a safe path component.
  std::string dir;         ///< "<root>/session-<id>-<name>", or under node-<k>/.
  std::string trace_path;  ///< "<dir>/trace.nmot"
  /// Topology node this session was homed to: its directory lives under
  /// the per-node root "<root>/node-<k>/" and the scheduler preferred a
  /// worker on that node.  Unset = the flat pre-topology layout.
  std::optional<std::uint32_t> home_node;
};

/// Per-session metadata file name (inside the session directory).
inline constexpr std::string_view kSessionMetaFile = "session.meta";
/// Store-level scheduler stats file name (at the store root).
inline constexpr std::string_view kSchedulerMetaFile = "scheduler.meta";

/// Reads a "key=value"-per-line metadata file (session.meta /
/// scheduler.meta).  nullopt when the file cannot be opened.
std::optional<std::map<std::string, std::string>> read_metadata_file(const std::string& path);

class SessionStore {
 public:
  /// Creates `root` (and parents) if needed.
  explicit SessionStore(std::string root);

  /// Registers a new session and creates its directory.  Thread-safe; ids
  /// are unique and dense in creation order.  With `home_node` the session
  /// directory is created under the per-node root "<root>/node-<k>/" so a
  /// socket-local worker writes socket-local trace blocks; ids stay unique
  /// across all node roots (one counter).
  SessionInfo create_session(std::string_view name,
                             std::optional<std::uint32_t> home_node = std::nullopt);

  [[nodiscard]] const std::string& root() const { return root_; }
  /// Snapshot of every session created so far (thread-safe copy).
  [[nodiscard]] std::vector<SessionInfo> sessions() const;

 private:
  std::string root_;
  mutable core::Mutex mutex_{"SessionStore"};
  std::uint32_t next_id_ NMO_GUARDED_BY(mutex_) = 0;
  std::vector<SessionInfo> sessions_ NMO_GUARDED_BY(mutex_);
};

/// What to do with a session whose time budget tripped mid-run.  In every
/// case the trace written so far is finalized *valid* (truncated, verify-
/// clean) - the policy only decides how the outcome is reported and
/// whether the job gets another attempt.
enum class OverrunPolicy : std::uint8_t {
  /// Keep the truncated trace and report the session kDone with
  /// budget_state "truncated" (the default: partial data beats none).
  kTruncate = 0,
  /// Report the session kFailed with a budget error; artifacts stay on
  /// disk for inspection.
  kFail,
  /// Resubmit the job once (admission-exempt, back through the queue with
  /// a fresh budget and session directory); the result reflects the final
  /// attempt.  A second overrun falls back to kTruncate.
  kRequeue,
};

[[nodiscard]] std::string_view to_string(OverrunPolicy policy) noexcept;

/// Per-job scheduling limits - the JobLimits half of the RunOptions /
/// JobLimits API surface.
struct JobLimits {
  /// Wall-clock time budget for the profile (baseline + instrumented
  /// runs); enforced cooperatively at the monitor's drain-round checkpoint
  /// and the engine replay loop.  0 = unlimited.
  std::uint64_t budget_ns = 0;
  /// Relative admission deadline: the job must reach a worker within this
  /// many nanoseconds of submission or it becomes terminal kExpired
  /// without running (EDF ordering within its priority class).  0 = none.
  std::uint64_t deadline_ns = 0;
  OverrunPolicy on_overrun = OverrunPolicy::kTruncate;
};

/// One profiled job of the concurrent runner.
struct SessionJob {
  std::string name = "job";
  core::NmoConfig nmo;
  sim::EngineConfig engine;
  /// Built on the session's worker (workloads are not shared).
  std::function<std::unique_ptr<wl::Workload>()> make_workload;
  bool with_baseline = false;
  /// Admission priority: higher runs first, EDF/FIFO within a class.
  std::uint8_t priority = 0;
  /// Tenant this job bills against (weighted-fair admission; see
  /// SchedulerConfig::tenants).  Empty = the "default" tenant.
  std::string tenant;
  /// Home topology node (soft placement hint): the session's directory
  /// moves under "<root>/node-<k>/" and the scheduler prefers a worker on
  /// node k (SubmitOptions::home_node semantics - bounded wait, never
  /// starves, cross-node fallback billed as a placement miss).  Requires a
  /// multi-node RunOptions::scheduler.topology to affect scheduling; the
  /// node-local directory layout applies regardless.
  std::optional<std::uint32_t> home_node;
  /// Time budget / deadline / overrun policy for this job.
  JobLimits limits;
  /// Trace file format for this session's output (default: v2 with the
  /// block codec; Options{.version = kTraceVersion1} pins the legacy
  /// format for stores older tooling must read).  RunOptions::trace_options
  /// overrides this run-wide when set.
  TraceWriter::Options trace_options;
  /// When set, the session tees every closed trace block to an nmo-traced
  /// collector (net/block_sender.hpp) while the local trace is written as
  /// usual.  Streaming is strictly additive: an unreachable collector or a
  /// mid-run stream failure degrades to exactly the local capture, with
  /// the fallback surfaced in SessionResult / session.meta / the report.
  std::optional<net::StreamConfig> stream;
};

/// Outcome of one job: where the trace landed and what it contained.
struct SessionResult {
  SessionInfo session;
  core::SessionReport report;
  std::uint64_t samples = 0;
  std::string fingerprint;  ///< MD5 of the written trace file.
  std::string error;        ///< Non-empty if the job failed / was turned away.
  /// Final lifecycle state (kDone, kFailed, kRejected, kShed, kExpired).
  core::SessionState state = core::SessionState::kDone;
  std::uint64_t queue_wait_ns = 0;  ///< Admission-queue wait (scheduler path).
  std::uint32_t worker = 0;         ///< Worker-pool slot that ran the job.
  std::uint32_t node = 0;  ///< Topology node of that worker (0 without one).
  std::string tenant;               ///< Tenant the job billed against.
  /// Time-budget outcome: "" (no budget configured), "ok" (finished within
  /// budget) or "truncated" (budget tripped; the trace is valid but
  /// partial).  Mirrored to session.meta as budget_state.
  std::string budget_state;

  /// Streaming tee outcome (SessionJob::stream was set; all defaults
  /// otherwise).  The local artifacts above are complete regardless.
  /// Field names match the session.meta keys one-for-one.
  struct Stream {
    bool streamed = false;
    std::string stream_state;  ///< "clean", "partial" (drops) or "fallback".
    std::uint64_t stream_blocks_sent = 0;
    std::uint64_t stream_blocks_dropped = 0;
    bool stream_fallback = false;
    std::string stream_error;
  };
  Stream stream;
};

/// run_sessions outcome: per-job results (in job order) plus the pool's
/// aggregate stats (zeroed on the threaded path, which has no pool).
struct MultiSessionRun {
  std::vector<SessionResult> results;
  SchedulerStats stats;
};

/// Everything that configures one run_sessions call - the run-wide half of
/// the redesigned API (per-job knobs live on SessionJob / JobLimits).
struct RunOptions {
  /// Pool size, admission queue/policy and the tenant table.  A defaulted
  /// config (hardware-concurrency workers, unbounded queue, no tenants,
  /// no deadlines, no budgets) reproduces the pre-tenant scheduler
  /// behavior exactly.
  SchedulerConfig scheduler;
  /// Run-wide trace format override; unset = each job's own
  /// SessionJob::trace_options.
  std::optional<TraceWriter::Options> trace_options;
  /// Use the legacy thread-per-session executor (one std::thread per job,
  /// no admission control, no scheduler.meta) - the baseline the scheduler
  /// is benchmarked and parity-tested against.
  bool threaded = false;
};

/// Runs every job per `options`, each admitted job writing its canonical
/// trace + region sidecar + session.meta into its own session directory,
/// and (pool path) the aggregate SchedulerStats with per-tenant rows into
/// `<root>/scheduler.meta`.  Results are in job order; jobs turned away by
/// admission control carry kRejected/kShed/kExpired and a non-empty error.
MultiSessionRun run_sessions(SessionStore& store, const std::vector<SessionJob>& jobs,
                             const RunOptions& options = {});

/// Deprecated shim for the pre-RunOptions signature; forwards to
/// run_sessions(store, jobs, RunOptions{.scheduler = config}).
MultiSessionRun run_sessions(SessionStore& store, const std::vector<SessionJob>& jobs,
                             const SchedulerConfig& config);

/// Deprecated shim for the old thread-per-session runner; forwards to
/// run_sessions(store, jobs, RunOptions{.threaded = true}).
std::vector<SessionResult> run_sessions_threaded(SessionStore& store,
                                                 const std::vector<SessionJob>& jobs);

}  // namespace nmo::store
