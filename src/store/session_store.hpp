// Multi-session trace storage: the step toward serving many concurrent
// profiled jobs (ROADMAP: "multi-process/multi-session output").
//
// A SessionStore owns one root directory and hands out per-session
// subdirectories with monotonically increasing ids; id assignment is
// mutex-protected so sessions can be created from any thread.  Each
// session's trace lands in its own file (store/trace_file.hpp) with its
// region table beside it (store/region_file.hpp), so N concurrent
// ProfileSessions never contend on output - the per-process analogue of
// upstream NMO's one-trace-per-run layout, with nmo-trace
// (tools/nmo_trace.cpp) as the merge/query companion.
//
// run_sessions is the concurrent runner.  It schedules jobs onto the
// bounded worker pool of store/scheduler.hpp: `max_workers` workers pull
// from a priority-aware admission queue instead of the old
// thread-per-session spawn (which collapses under fleet-scale job
// counts).  The thread-per-session path survives as
// run_sessions_threaded, the baseline the scheduler bench and the parity
// tests compare against: both paths must produce byte-identical session
// traces (and therefore byte-identical merges).
//
// Alongside each trace the runner persists a `session.meta` key=value
// file (lifecycle state, worker slot, queue wait, samples, fingerprint)
// and, at the store root, a `scheduler.meta` with the pool's aggregate
// SchedulerStats - what `nmo-trace sessions` prints back.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/session.hpp"
#include "net/block_sender.hpp"
#include "sim/engine.hpp"
#include "store/scheduler.hpp"
#include "store/trace_file.hpp"
#include "workloads/workload.hpp"

namespace nmo::store {

/// One registered session: its id and where its artifacts live.
struct SessionInfo {
  std::uint32_t id = 0;
  std::string name;        ///< Sanitized to a safe path component.
  std::string dir;         ///< "<root>/session-<id>-<name>"
  std::string trace_path;  ///< "<dir>/trace.nmot"
};

/// Per-session metadata file name (inside the session directory).
inline constexpr std::string_view kSessionMetaFile = "session.meta";
/// Store-level scheduler stats file name (at the store root).
inline constexpr std::string_view kSchedulerMetaFile = "scheduler.meta";

/// Reads a "key=value"-per-line metadata file (session.meta /
/// scheduler.meta).  nullopt when the file cannot be opened.
std::optional<std::map<std::string, std::string>> read_metadata_file(const std::string& path);

class SessionStore {
 public:
  /// Creates `root` (and parents) if needed.
  explicit SessionStore(std::string root);

  /// Registers a new session and creates its directory.  Thread-safe; ids
  /// are unique and dense in creation order.
  SessionInfo create_session(std::string_view name);

  [[nodiscard]] const std::string& root() const { return root_; }
  /// Snapshot of every session created so far (thread-safe copy).
  [[nodiscard]] std::vector<SessionInfo> sessions() const;

 private:
  std::string root_;
  mutable std::mutex mutex_;
  std::uint32_t next_id_ = 0;
  std::vector<SessionInfo> sessions_;
};

/// One profiled job of the concurrent runner.
struct SessionJob {
  std::string name = "job";
  core::NmoConfig nmo;
  sim::EngineConfig engine;
  /// Built on the session's worker (workloads are not shared).
  std::function<std::unique_ptr<wl::Workload>()> make_workload;
  bool with_baseline = false;
  /// Admission priority: higher runs first, FIFO within a class.
  std::uint8_t priority = 0;
  /// Trace file format for this session's output (default: v2 with the
  /// block codec; Options{.version = kTraceVersion1} pins the legacy
  /// format for stores older tooling must read).
  TraceWriter::Options trace_options;
  /// When set, the session tees every closed trace block to an nmo-traced
  /// collector (net/block_sender.hpp) while the local trace is written as
  /// usual.  Streaming is strictly additive: an unreachable collector or a
  /// mid-run stream failure degrades to exactly the local capture, with
  /// the fallback surfaced in SessionResult / session.meta / the report.
  std::optional<net::StreamConfig> stream;
};

/// Outcome of one job: where the trace landed and what it contained.
struct SessionResult {
  SessionInfo session;
  core::SessionReport report;
  std::uint64_t samples = 0;
  std::string fingerprint;  ///< MD5 of the written trace file.
  std::string error;        ///< Non-empty if the job failed / was turned away.
  /// Final lifecycle state (kDone, kFailed, kRejected, kShed).
  core::SessionState state = core::SessionState::kDone;
  std::uint64_t queue_wait_ns = 0;  ///< Admission-queue wait (scheduler path).
  std::uint32_t worker = 0;         ///< Worker-pool slot that ran the job.

  // Streaming tee outcome (SessionJob::stream was set; all defaults
  // otherwise).  The local artifacts above are complete regardless.
  bool streamed = false;
  std::string stream_state;  ///< "clean", "partial" (drops) or "fallback".
  std::uint64_t stream_blocks_sent = 0;
  std::uint64_t stream_blocks_dropped = 0;
  bool stream_fallback = false;
  std::string stream_error;
};

/// run_sessions outcome: per-job results (in job order) plus the pool's
/// aggregate stats.
struct MultiSessionRun {
  std::vector<SessionResult> results;
  SchedulerStats stats;
};

/// Runs every job on the bounded scheduler (`config` sizes the pool and
/// the admission queue), each admitted job writing its canonical trace +
/// region sidecar + session.meta into its own session directory, and the
/// aggregate SchedulerStats into `<root>/scheduler.meta`.  Results are in
/// job order; jobs turned away by admission control carry kRejected/kShed
/// and a non-empty error.
MultiSessionRun run_sessions(SessionStore& store, const std::vector<SessionJob>& jobs,
                             const SchedulerConfig& config);

/// Scheduler-backed runner with the default pool (hardware-concurrency
/// workers, unbounded queue): the drop-in replacement for the old
/// thread-per-session API.
std::vector<SessionResult> run_sessions(SessionStore& store,
                                        const std::vector<SessionJob>& jobs);

/// The old thread-per-session runner (one std::thread per job, no
/// admission control), kept as the baseline the scheduler is benchmarked
/// and parity-tested against.  Writes the same per-session artifacts.
std::vector<SessionResult> run_sessions_threaded(SessionStore& store,
                                                 const std::vector<SessionJob>& jobs);

}  // namespace nmo::store
