// Multi-session trace storage: the step toward serving many concurrent
// profiled jobs (ROADMAP: "multi-process/multi-session output").
//
// A SessionStore owns one root directory and hands out per-session
// subdirectories with monotonically increasing ids; id assignment is
// mutex-protected so sessions can be created from any thread.  Each
// session's trace lands in its own file (store/trace_file.hpp), so N
// concurrent ProfileSessions never contend on output - the per-process
// analogue of upstream NMO's one-trace-per-run layout, with nmo-trace
// (tools/nmo_trace.cpp) as the merge/query companion.
//
// run_sessions is the concurrent runner: one std::thread per job, each
// building its own ProfileSession (engine, machine, profiler), profiling
// its workload and writing the canonical trace to the session's file.
// This relies on the active-profiler binding of the C annotation API
// being thread-local (core/profiler.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/session.hpp"
#include "sim/engine.hpp"
#include "workloads/workload.hpp"

namespace nmo::store {

/// One registered session: its id and where its artifacts live.
struct SessionInfo {
  std::uint32_t id = 0;
  std::string name;        ///< Sanitized to a safe path component.
  std::string dir;         ///< "<root>/session-<id>-<name>"
  std::string trace_path;  ///< "<dir>/trace.nmot"
};

class SessionStore {
 public:
  /// Creates `root` (and parents) if needed.
  explicit SessionStore(std::string root);

  /// Registers a new session and creates its directory.  Thread-safe; ids
  /// are unique and dense in creation order.
  SessionInfo create_session(std::string_view name);

  [[nodiscard]] const std::string& root() const { return root_; }
  /// Snapshot of every session created so far (thread-safe copy).
  [[nodiscard]] std::vector<SessionInfo> sessions() const;

 private:
  std::string root_;
  mutable std::mutex mutex_;
  std::uint32_t next_id_ = 0;
  std::vector<SessionInfo> sessions_;
};

/// One profiled job of the concurrent runner.
struct SessionJob {
  std::string name = "job";
  core::NmoConfig nmo;
  sim::EngineConfig engine;
  /// Built on the session's own thread (workloads are not shared).
  std::function<std::unique_ptr<wl::Workload>()> make_workload;
  bool with_baseline = false;
};

/// Outcome of one job: where the trace landed and what it contained.
struct SessionResult {
  SessionInfo session;
  core::SessionReport report;
  std::uint64_t samples = 0;
  std::string fingerprint;  ///< MD5 of the written trace file.
  std::string error;        ///< Non-empty if the job failed.
};

/// Runs every job concurrently (one std::thread per job), each writing its
/// canonical trace to its own session file in `store`.  Results are in job
/// order.
std::vector<SessionResult> run_sessions(SessionStore& store,
                                        const std::vector<SessionJob>& jobs);

}  // namespace nmo::store
