// Streaming k-way merge of per-session / per-shard trace files.
//
// Each ProfileSession (and each decode-pool shard flushed through
// Profiler::finalize_trace) emits a trace already in the canonical order of
// core::SampleTrace::sort_canonical().  Merging N such files is therefore a
// k-way merge under core::canonical_less: a min-heap holds one sample per
// input, so memory is O(inputs), not O(samples) - the property that lets
// nmo-trace fold traces far larger than RAM.  The merged file's CSV and MD5
// are byte-identical to sort_canonical() over the concatenated samples in
// memory (verified by tests/test_store.cpp and the CI smoke step).
//
// Inputs that are not canonically sorted are detected on the fly (the
// output would regress) and reported as an error instead of silently
// producing a non-canonical trace.
//
// Region tables merge too: when an input trace has a region sidecar
// (store/region_file.hpp, "trace.nmor" next to "trace.nmot"), its table
// joins a RegionUnion and every sample's region index is remapped to the
// union index as it streams through, so region attribution survives the
// merge.  The union table is written as the output's own sidecar.
// Within one session a sample's region is a pure function of its address,
// so remapping can never reorder a canonically sorted input.  Inputs
// without a sidecar keep their indices untouched (and contribute nothing
// to the union), preserving the pre-sidecar merge behavior bit for bit.
//
// Per-block index metadata (BlockMeta) is recomputed, never copied: the
// merge re-blocks the interleaved sample stream through TraceWriter::add,
// whose writer summarizes each *output* block from the samples it encodes
// - input summaries describe input blocks, which do not survive a merge
// (and carry pre-union region indices).  tests/test_store.cpp holds the
// merged metadata to a from-scratch rewrite of the merged samples.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "store/trace_file.hpp"

namespace nmo::store {

/// Outcome of one merge.
struct MergeStats {
  std::uint64_t samples = 0;   ///< Samples written to the output.
  std::size_t inputs = 0;      ///< Input files consumed.
  std::string fingerprint;     ///< MD5 of the merged trace.
  std::size_t regions = 0;     ///< Entries in the merged region table (0 = no sidecars).
};

class TraceMerger {
 public:
  /// Registers one input trace file (read lazily during merge).
  void add_input(const std::string& path);

  /// Output format knob: defaults to the writer's default (v2 with the
  /// block codec).  Inputs of either version merge into either output -
  /// the sample stream (and so the merged fingerprint) is identical
  /// regardless, since the digest covers decoded samples, not file bytes.
  void set_writer_options(TraceWriter::Options options) { writer_options_ = options; }

  /// Streams all inputs into `out_path` in canonical order.  Returns the
  /// stats on success; on failure returns std::nullopt and error() names
  /// the offending input.
  std::optional<MergeStats> merge_to(const std::string& out_path);

  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  std::vector<std::string> inputs_;
  TraceWriter::Options writer_options_;
  std::string error_;
};

}  // namespace nmo::store
