#include "store/trace_merger.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <queue>
#include <system_error>

#include "store/region_file.hpp"

namespace nmo::store {
namespace {

/// One input's head-of-stream sample.
struct HeapEntry {
  core::TraceSample sample;
  std::size_t input;
};

struct HeapGreater {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (core::canonical_less(b.sample, a.sample)) return true;
    if (core::canonical_less(a.sample, b.sample)) return false;
    return a.input > b.input;  // stable tie-break: lower input first
  }
};

}  // namespace

void TraceMerger::add_input(const std::string& path) { inputs_.push_back(path); }

std::optional<MergeStats> TraceMerger::merge_to(const std::string& out_path) {
  error_.clear();

  // Writing the output truncates it; if it is also an input the merge
  // would destroy that input, so refuse before any file is opened.  An
  // existing output is compared by inode (equivalent), which also catches
  // hardlinks and symlink chains; the canonical-path comparison covers
  // outputs that do not exist yet.
  std::error_code out_ec;
  const auto out_canon = std::filesystem::weakly_canonical(out_path, out_ec);
  for (const auto& in : inputs_) {
    std::error_code ec;
    bool same = in == out_path;
    if (!same && !out_ec) same = std::filesystem::weakly_canonical(in, ec) == out_canon && !ec;
    if (!same) same = std::filesystem::equivalent(in, out_path, ec) && !ec;
    if (same) {
      error_ = out_path + ": output path is also a merge input";
      return std::nullopt;
    }
  }

  // Region sidecars: union the tables of every input that has one and
  // remap that input's sample indices into the union.  A missing sidecar
  // means "no remap" (indices pass through untouched); a sidecar that
  // exists but does not parse is an error - silently dropping it would
  // mislabel every region in the merged trace.  The union is sorted (see
  // RegionUnion), so the merged bytes do not depend on input order.
  RegionUnion region_union;
  std::vector<std::size_t> handles(inputs_.size(), 0);
  std::vector<bool> has_regions(inputs_.size(), false);
  bool any_regions = false;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    const std::string sidecar = region_path_for(inputs_[i]);
    std::error_code ec;
    if (!std::filesystem::exists(sidecar, ec)) continue;
    std::string region_error;
    auto table = read_region_file(sidecar, &region_error);
    if (!table) {
      error_ = region_error;
      return std::nullopt;
    }
    handles[i] = region_union.add(std::move(*table));
    has_regions[i] = true;
    any_regions = true;
  }
  std::vector<std::vector<std::int32_t>> remaps(inputs_.size());
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    if (has_regions[i]) remaps[i] = region_union.mapping(handles[i]);
  }
  // Remaps an input's sample into the union index space; false (with
  // error_ set) on an index the sidecar table cannot account for.
  const auto remap_region = [&](core::TraceSample& s, std::size_t input) {
    if (!has_regions[input] || s.region < 0) return true;
    if (static_cast<std::size_t>(s.region) >= remaps[input].size()) {
      error_ = inputs_[input] + ": sample region index " + std::to_string(s.region) +
               " is out of range of its region sidecar";
      return false;
    }
    s.region = remaps[input][static_cast<std::size_t>(s.region)];
    return true;
  };

  std::vector<std::unique_ptr<TraceReader>> readers;
  readers.reserve(inputs_.size());
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapGreater> heap;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    readers.push_back(std::make_unique<TraceReader>(inputs_[i]));
    TraceReader& reader = *readers.back();
    if (!reader.ok()) {
      error_ = inputs_[i] + ": " + reader.error();
      return std::nullopt;
    }
    core::TraceSample s;
    if (reader.next(s)) {
      if (!remap_region(s, i)) return std::nullopt;
      heap.push(HeapEntry{s, i});
    } else if (!reader.ok()) {
      error_ = inputs_[i] + ": " + reader.error();
      return std::nullopt;
    }
  }

  // A sidecar left behind by an earlier merge to the same path would
  // mislabel this output if the new merge carries no (or different)
  // region tables; the fresh sidecar is written only after a successful
  // close.
  std::remove(region_path_for(out_path).c_str());

  TraceWriter writer(out_path, writer_options_);
  if (!writer.ok()) {
    error_ = writer.error();
    return std::nullopt;
  }

  // On any failure past this point the partial output must not survive as
  // a plausible trace: abandon() withholds the footer (so a leftover file
  // cannot validate) and the file itself is removed.
  const auto fail = [&](std::string message) {
    error_ = std::move(message);
    writer.abandon();
    std::remove(out_path.c_str());
    return std::nullopt;
  };

  core::TraceSample prev{};
  bool have_prev = false;
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    if (have_prev && core::canonical_less(top.sample, prev)) {
      // A k-way merge of sorted streams can never regress; this input was
      // not in canonical order.
      return fail(inputs_[top.input] + ": not in canonical order (merge would be unsorted)");
    }
    writer.add(top.sample);
    prev = top.sample;
    have_prev = true;

    TraceReader& reader = *readers[top.input];
    core::TraceSample s;
    if (reader.next(s)) {
      if (!remap_region(s, top.input)) {
        const std::string message = error_;
        return fail(message);
      }
      heap.push(HeapEntry{s, top.input});
    } else if (!reader.ok()) {
      return fail(inputs_[top.input] + ": " + reader.error());
    }
  }

  if (!writer.close()) {
    error_ = out_path + ": " + writer.error();
    std::remove(out_path.c_str());
    return std::nullopt;
  }
  if (any_regions) {
    // The merged trace's region indices now live in the union index
    // space; without its sidecar they would be unlabeled (or worse,
    // labeled by some stale table), so a sidecar write failure fails the
    // merge.
    std::string region_error;
    if (!write_region_file(region_path_for(out_path), region_union.regions(), &region_error)) {
      error_ = region_error;
      std::remove(out_path.c_str());
      return std::nullopt;
    }
  }
  MergeStats stats;
  stats.samples = writer.samples_written();
  stats.inputs = inputs_.size();
  stats.fingerprint = writer.fingerprint();
  stats.regions = region_union.regions().size();
  return stats;
}

}  // namespace nmo::store
