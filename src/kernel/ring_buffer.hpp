// The perf data ring buffer: kernel-produced records (PERF_RECORD_AUX and
// friends), consumer-read in a producer/consumer model via the head/tail
// cursors of the metadata page.
//
// NMO allocates a ring of (N+1) pages where the first page is the metadata
// page (section IV-A); here the metadata page is a struct and the data area
// a byte ring.  Records never straddle logically: they are copied in and out
// byte-wise across the wrap, as a memcpy-based consumer would.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "kernel/perf_abi.hpp"

namespace nmo::kern {

/// Header preceding every record in the data area (perf_event_header).
struct RecordHeader {
  RecordType type = RecordType::kAux;
  std::uint16_t misc = 0;
  std::uint16_t size = 0;  ///< Total record size including this header.
};

/// One record as returned to the consumer.
struct Record {
  RecordHeader header;
  std::vector<std::byte> payload;
};

class RingBuffer {
 public:
  /// `pages` data pages of `page_size` bytes each (the metadata page is
  /// separate, as in the (N+1)-page mmap layout).
  RingBuffer(std::size_t pages, std::size_t page_size);

  /// Kernel side: appends a record; returns false (and counts a loss) when
  /// there is not enough free space.
  bool write(RecordType type, std::span<const std::byte> payload);

  /// Consumer side: pops the oldest record, advancing data_tail.
  std::optional<Record> read();

  /// Number of readable bytes (data_head - data_tail).
  [[nodiscard]] std::uint64_t readable() const { return meta_.data_head - meta_.data_tail; }

  /// Records dropped because the ring was full.
  [[nodiscard]] std::uint64_t lost() const { return lost_; }

  [[nodiscard]] std::size_t capacity() const { return data_.size(); }
  [[nodiscard]] MetadataPage& metadata() { return meta_; }
  [[nodiscard]] const MetadataPage& metadata() const { return meta_; }

 private:
  void copy_in(std::uint64_t pos, std::span<const std::byte> bytes);
  void copy_out(std::uint64_t pos, std::span<std::byte> bytes) const;

  std::vector<std::byte> data_;
  MetadataPage meta_;
  std::uint64_t lost_ = 0;
};

}  // namespace nmo::kern
