// Timescale conversion between the SPE generic timer and perf-clock
// nanoseconds.
//
// "The timestamp timer from ARM SPE uses a different timescale than perf,
// so ... NMO also performs a timescale conversion using the time_zero,
// time_shift and time_mult fields from the ring buffer metadata page"
// (section IV-A).  The kernel formula is
//     ns = time_zero + ((cycles * time_mult) >> time_shift)
// and this class computes a (mult, shift, zero) triple for a given timer
// frequency exactly the way the kernel does.
#pragma once

#include <cstdint>

#include "kernel/perf_abi.hpp"

namespace nmo::kern {

class TimeConv {
 public:
  /// Builds a conversion for a timer running at `freq_hz`, with `zero_ns`
  /// as the perf-clock time of timer value 0.
  static TimeConv from_frequency(double freq_hz, std::uint64_t zero_ns = 0);

  /// Reconstructs a conversion from metadata-page fields (consumer side).
  static TimeConv from_metadata(const MetadataPage& meta);

  /// Timer cycles -> perf-clock nanoseconds.
  [[nodiscard]] std::uint64_t to_ns(std::uint64_t cycles) const {
    return zero_ + ((static_cast<__uint128_t>(cycles) * mult_) >> shift_);
  }

  /// Inverse mapping (used by tests to check round-trip error bounds).
  [[nodiscard]] std::uint64_t to_cycles(std::uint64_t ns) const;

  /// Publishes the triple into a metadata page.
  void fill_metadata(MetadataPage& meta) const {
    meta.time_shift = shift_;
    meta.time_mult = mult_;
    meta.time_zero = zero_;
  }

  [[nodiscard]] std::uint16_t shift() const { return shift_; }
  [[nodiscard]] std::uint32_t mult() const { return mult_; }
  [[nodiscard]] std::uint64_t zero() const { return zero_; }

 private:
  TimeConv(std::uint16_t shift, std::uint32_t mult, std::uint64_t zero)
      : shift_(shift), mult_(mult), zero_(zero) {}

  std::uint16_t shift_;
  std::uint32_t mult_;
  std::uint64_t zero_;
};

}  // namespace nmo::kern
