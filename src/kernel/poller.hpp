// epoll-style readiness multiplexing over perf events.
//
// NMO "uses epoll to monitor incoming updates to the ring buffer"
// (section IV-A): one monitoring loop waits on all per-core SPE fds at
// once.  The simulator's monitor does the same through this class.
#pragma once

#include <vector>

#include "kernel/perf_event.hpp"

namespace nmo::kern {

class Poller {
 public:
  /// Registers an event (EPOLL_CTL_ADD analog).  Does not take ownership.
  void add(PerfEvent* event) { events_.push_back(event); }

  /// Returns all events with unacknowledged wakeups, acknowledging one
  /// wakeup per returned event (level-triggered epoll semantics: an event
  /// stays ready while data remains).
  std::vector<PerfEvent*> poll() {
    std::vector<PerfEvent*> ready;
    for (auto* e : events_) {
      if (e->pending_wakeups() > 0) {
        e->ack_wakeup();
        ready.push_back(e);
      }
    }
    return ready;
  }

  /// Drain-round handoff: appends every event with unacknowledged wakeups
  /// to `out` and consumes ALL of their pending wakeups (a drain round
  /// services the whole fd, so coalesced wakeups are acknowledged
  /// together).  Returns the total number of wakeups acknowledged; `out`
  /// lists which fds were actually ready (an epoll-style consumer drains
  /// just those).
  std::uint64_t take_ready(std::vector<PerfEvent*>& out) {
    std::uint64_t acked = 0;
    for (auto* e : events_) {
      if (e->pending_wakeups() > 0) {
        acked += e->ack_all_wakeups();
        out.push_back(e);
      }
    }
    return acked;
  }

  /// take_ready without the readiness list, for consumers like the monitor
  /// that service the whole fd set per round and only need the batched
  /// acknowledgement.  Returns the number of wakeups acknowledged.
  std::uint64_t ack_ready() {
    std::uint64_t acked = 0;
    for (auto* e : events_) acked += e->ack_all_wakeups();
    return acked;
  }

  /// True if any registered event has a pending wakeup.
  [[nodiscard]] bool any_ready() const {
    for (const auto* e : events_) {
      if (e->pending_wakeups() > 0) return true;
    }
    return false;
  }

  [[nodiscard]] const std::vector<PerfEvent*>& events() const { return events_; }

 private:
  std::vector<PerfEvent*> events_;
};

}  // namespace nmo::kern
