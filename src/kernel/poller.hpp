// epoll-style readiness multiplexing over perf events.
//
// NMO "uses epoll to monitor incoming updates to the ring buffer"
// (section IV-A): one monitoring loop waits on all per-core SPE fds at
// once.  The simulator's monitor does the same through this class.
#pragma once

#include <vector>

#include "kernel/perf_event.hpp"

namespace nmo::kern {

class Poller {
 public:
  /// Registers an event (EPOLL_CTL_ADD analog).  Does not take ownership.
  void add(PerfEvent* event) { events_.push_back(event); }

  /// Returns all events with unacknowledged wakeups, acknowledging one
  /// wakeup per returned event (level-triggered epoll semantics: an event
  /// stays ready while data remains).
  std::vector<PerfEvent*> poll() {
    std::vector<PerfEvent*> ready;
    for (auto* e : events_) {
      if (e->pending_wakeups() > 0) {
        e->ack_wakeup();
        ready.push_back(e);
      }
    }
    return ready;
  }

  /// True if any registered event has a pending wakeup.
  [[nodiscard]] bool any_ready() const {
    for (const auto* e : events_) {
      if (e->pending_wakeups() > 0) return true;
    }
    return false;
  }

  [[nodiscard]] const std::vector<PerfEvent*>& events() const { return events_; }

 private:
  std::vector<PerfEvent*> events_;
};

}  // namespace nmo::kern
