#include "kernel/ring_buffer.hpp"

#include <cstring>
#include <stdexcept>

namespace nmo::kern {

RingBuffer::RingBuffer(std::size_t pages, std::size_t page_size) {
  if (pages == 0 || page_size == 0) {
    throw std::invalid_argument("ring buffer needs at least one page");
  }
  data_.resize(pages * page_size);
  meta_.data_size = data_.size();
}

void RingBuffer::copy_in(std::uint64_t pos, std::span<const std::byte> bytes) {
  // An empty span may carry a null data(); memcpy's pointer arguments must
  // never be null even for n == 0 (UBSan enforces this).
  if (bytes.empty()) return;
  const std::size_t cap = data_.size();
  std::size_t at = static_cast<std::size_t>(pos % cap);
  const std::size_t first = std::min(bytes.size(), cap - at);
  std::memcpy(data_.data() + at, bytes.data(), first);
  if (first < bytes.size()) {
    std::memcpy(data_.data(), bytes.data() + first, bytes.size() - first);
  }
}

void RingBuffer::copy_out(std::uint64_t pos, std::span<std::byte> bytes) const {
  if (bytes.empty()) return;
  const std::size_t cap = data_.size();
  std::size_t at = static_cast<std::size_t>(pos % cap);
  const std::size_t first = std::min(bytes.size(), cap - at);
  std::memcpy(bytes.data(), data_.data() + at, first);
  if (first < bytes.size()) {
    std::memcpy(bytes.data() + first, data_.data(), bytes.size() - first);
  }
}

bool RingBuffer::write(RecordType type, std::span<const std::byte> payload) {
  const std::size_t total = sizeof(RecordHeader) + payload.size();
  if (total > data_.size() ||
      data_.size() - (meta_.data_head - meta_.data_tail) < total) {
    ++lost_;
    return false;
  }
  RecordHeader header{.type = type, .misc = 0, .size = static_cast<std::uint16_t>(total)};
  copy_in(meta_.data_head,
          std::span<const std::byte>(reinterpret_cast<const std::byte*>(&header), sizeof(header)));
  if (!payload.empty()) copy_in(meta_.data_head + sizeof(header), payload);
  meta_.data_head += total;
  return true;
}

std::optional<Record> RingBuffer::read() {
  if (readable() < sizeof(RecordHeader)) return std::nullopt;
  Record rec;
  copy_out(meta_.data_tail, std::span<std::byte>(reinterpret_cast<std::byte*>(&rec.header),
                                                 sizeof(rec.header)));
  if (rec.header.size < sizeof(RecordHeader) || rec.header.size > readable()) {
    // Corrupt stream; drop everything rather than spin.
    meta_.data_tail = meta_.data_head;
    return std::nullopt;
  }
  const std::size_t payload_size = rec.header.size - sizeof(RecordHeader);
  rec.payload.resize(payload_size);
  copy_out(meta_.data_tail + sizeof(RecordHeader),
           std::span<std::byte>(rec.payload.data(), payload_size));
  meta_.data_tail += rec.header.size;
  return rec;
}

}  // namespace nmo::kern
