#include "kernel/perf_event.hpp"

namespace nmo::kern {

PerfEvent::PerfEvent(const PerfEventAttr& attr, CoreId core, std::size_t ring_pages,
                     std::size_t page_size, std::size_t aux_bytes, TimeConv time_conv,
                     Throttler* throttler)
    : attr_(attr), core_(core), time_conv_(time_conv), throttler_(throttler),
      enabled_(!attr.disabled) {
  if (attr_.type != kPerfTypeArmSpe) return;  // counting mode: no buffers

  ring_ = std::make_unique<RingBuffer>(ring_pages, page_size);
  aux_ = std::make_unique<AuxBuffer>(aux_bytes);
  time_conv_.fill_metadata(ring_->metadata());
  ring_->metadata().aux_size = aux_bytes;

  watermark_ = attr_.aux_watermark != 0 ? attr_.aux_watermark : aux_bytes / 2;
  if (watermark_ == 0) watermark_ = 1;
  aux_functional_ = aux_bytes >= kMinFunctionalAuxPages * page_size;
}

bool PerfEvent::aux_write(std::span<const std::byte> bytes, std::uint64_t now_ns) {
  if (!enabled_ || ring_ == nullptr) return false;
  if (!aux_functional_ || !aux_->write(bytes)) {
    // Buffer full (or the driver never managed to start the device): the
    // sample is gone and truncation is reported.  The real arm_spe driver
    // raises the buffer-management interrupt in this situation and emits a
    // TRUNCATED AUX record with a wakeup, once per full episode, so the
    // consumer learns it must drain.
    pending_flags_ |= kAuxFlagTruncated;
    ++stats_.dropped_samples;
    if (aux_functional_ && !full_notified_) {
      full_notified_ = true;
      emit_aux_record(now_ns);
    }
    return false;
  }
  ring_->metadata().aux_head = aux_->head();
  if (aux_->head() - emitted_head_ >= watermark_) {
    emit_aux_record(now_ns);
  }
  return true;
}

std::size_t PerfEvent::aux_write_batch(std::span<const std::byte> records,
                                       std::size_t record_size,
                                       std::span<const std::uint64_t> times_ns) {
  std::size_t accepted = 0;
  std::size_t i = 0;
  for (std::size_t off = 0; off + record_size <= records.size(); off += record_size, ++i) {
    const std::uint64_t now_ns = i < times_ns.size() ? times_ns[i] : 0;
    if (aux_write(records.subspan(off, record_size), now_ns)) ++accepted;
  }
  return accepted;
}

void PerfEvent::flush_aux(std::uint64_t now_ns) {
  if (ring_ == nullptr) return;
  if (aux_->head() > emitted_head_ || pending_flags_ != 0) {
    emit_aux_record(now_ns);
  }
}

void PerfEvent::emit_aux_record(std::uint64_t now_ns) {
  AuxRecord rec{
      .aux_offset = emitted_head_,
      .aux_size = aux_->head() - emitted_head_,
      .flags = pending_flags_,
  };
  if (rec.aux_size == 0 && rec.flags == 0) return;
  ring_->write(RecordType::kAux,
               std::span<const std::byte>(reinterpret_cast<const std::byte*>(&rec), sizeof(rec)));
  emitted_head_ = aux_->head();
  ++stats_.aux_records;
  if (rec.flags & kAuxFlagTruncated) ++stats_.truncated_records;
  if (rec.flags & kAuxFlagCollision) ++stats_.collision_records;
  pending_flags_ = 0;
  ++stats_.wakeups;
  if (wakeup_cb_) wakeup_cb_(*this, now_ns);
}

bool PerfEvent::throttled(std::uint64_t now_ns) {
  if (throttler_ == nullptr) return false;
  const bool t = throttler_->is_throttled(now_ns);
  if (!t && was_throttled_) {
    ThrottleRecord rec{.time_ns = now_ns};
    ring_->write(RecordType::kUnthrottle,
                 std::span<const std::byte>(reinterpret_cast<const std::byte*>(&rec), sizeof(rec)));
    was_throttled_ = false;
  }
  return t;
}

bool PerfEvent::account_samples(std::uint64_t now_ns, std::uint64_t n) {
  if (throttler_ == nullptr) return true;
  if (throttler_->on_samples(now_ns, n)) return true;
  if (!was_throttled_ && ring_ != nullptr) {
    ThrottleRecord rec{.time_ns = now_ns};
    ring_->write(RecordType::kThrottle,
                 std::span<const std::byte>(reinterpret_cast<const std::byte*>(&rec), sizeof(rec)));
    ++stats_.throttle_records;
    was_throttled_ = true;
  }
  return false;
}

std::unique_ptr<PerfEvent> open_event(const PerfEventAttr& attr, CoreId core,
                                      std::size_t ring_pages, std::size_t page_size,
                                      std::size_t aux_bytes, TimeConv time_conv,
                                      Throttler* throttler) {
  if (attr.type == kPerfTypeArmSpe) {
    if (attr.sample_period == 0) {
      throw PerfOpenError("SPE events require a nonzero sample_period");
    }
    if (ring_pages == 0) {
      throw PerfOpenError("SPE events require a data ring buffer");
    }
    if (aux_bytes == 0) {
      throw PerfOpenError("SPE events require an aux buffer");
    }
    const std::uint64_t wm = attr.aux_watermark != 0 ? attr.aux_watermark : aux_bytes / 2;
    if (wm > aux_bytes) {
      throw PerfOpenError("aux_watermark larger than the aux buffer");
    }
  }
  return std::make_unique<PerfEvent>(attr, core, ring_pages, page_size, aux_bytes, time_conv,
                                     throttler);
}

}  // namespace nmo::kern
