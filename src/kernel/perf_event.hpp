// One open perf event, the object behind the file descriptor that
// perf_event_open returns.
//
// Two operating modes mirror how NMO uses perf:
//  * counting mode (type == kPerfTypeHardware): a simple 64-bit counter the
//    machine model increments (mem_access for the accuracy baseline,
//    bus_access for bandwidth estimation);
//  * sampling mode (type == kPerfTypeArmSpe): owns a data ring buffer and an
//    aux buffer; the SPE device writes packet bytes through aux_write() and
//    the event emits PERF_RECORD_AUX records and wakeups at every
//    aux_watermark bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>

#include "common/types.hpp"
#include "kernel/aux_buffer.hpp"
#include "kernel/perf_abi.hpp"
#include "kernel/ring_buffer.hpp"
#include "kernel/throttle.hpp"
#include "kernel/timeconv.hpp"

namespace nmo::kern {

/// Minimum functional aux buffer size.  The paper measures that SPE "loses
/// all samples if the Aux buffer is not large enough" and that "the minimum
/// size to ensure SPE works is 4 pages" (section VII-B) - the driver needs
/// room for the hardware's write granularity plus a watermark's worth of
/// records.
inline constexpr std::uint64_t kMinFunctionalAuxPages = 4;

/// Error thrown by open_event for invalid configurations (the moral
/// equivalent of perf_event_open returning -EINVAL).
class PerfOpenError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

class PerfEvent {
 public:
  /// Statistics visible to the profiler.
  struct Stats {
    std::uint64_t aux_records = 0;        ///< PERF_RECORD_AUX emitted.
    std::uint64_t wakeups = 0;            ///< Poll wakeups raised.
    std::uint64_t truncated_records = 0;  ///< AUX records flagged TRUNCATED.
    std::uint64_t collision_records = 0;  ///< AUX records flagged COLLISION.
    std::uint64_t dropped_samples = 0;    ///< Samples lost to a full aux buffer.
    std::uint64_t throttle_records = 0;   ///< PERF_RECORD_THROTTLE emitted.
  };

  PerfEvent(const PerfEventAttr& attr, CoreId core, std::size_t ring_pages,
            std::size_t page_size, std::size_t aux_bytes, TimeConv time_conv,
            Throttler* throttler);

  // -- control -------------------------------------------------------------
  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  // -- counting mode --------------------------------------------------------
  void add_count(std::uint64_t n) {
    if (enabled_) count_ += n;
  }
  [[nodiscard]] std::uint64_t read_count() const { return count_; }

  // -- sampling mode: device side -------------------------------------------
  /// Writes one sample record's bytes into the aux buffer at virtual time
  /// `now_ns`.  Returns false when the buffer was full and the sample was
  /// dropped (a TRUNCATED flag will be carried by the next AUX record).
  bool aux_write(std::span<const std::byte> bytes, std::uint64_t now_ns);

  /// Batched variant: writes `records.size() / record_size` fixed-size
  /// records in one call, each stamped with its own timestamp from
  /// `times_ns`.  Watermark checks, AUX record emission and truncation
  /// accounting are applied per record, so the observable event stream is
  /// identical to calling aux_write() in a loop; the batch only removes the
  /// per-record call boundary on the producer's hot path.  Returns the
  /// number of records accepted.
  std::size_t aux_write_batch(std::span<const std::byte> records, std::size_t record_size,
                              std::span<const std::uint64_t> times_ns);

  /// Device-side notification that a hardware sample collision occurred;
  /// the next AUX record carries the COLLISION flag (what NMO counts).
  void note_collision() { pending_flags_ |= kAuxFlagCollision; }

  /// Forces out an AUX record for any bytes below the watermark (profilers
  /// call this when the program exits: "the monitoring process in NMO
  /// drains the buffer after the exit of the program").
  void flush_aux(std::uint64_t now_ns);

  /// True when sampling is currently suspended by the global throttler.
  bool throttled(std::uint64_t now_ns);

  /// Reports `n` processed samples to the throttler; emits a
  /// PERF_RECORD_THROTTLE when the budget trips.  Returns false if the
  /// caller must suspend sampling.
  bool account_samples(std::uint64_t now_ns, std::uint64_t n);

  // -- sampling mode: consumer side -----------------------------------------
  /// Pops the next record from the data ring.
  std::optional<Record> read_record() { return ring_ ? ring_->read() : std::nullopt; }

  /// Copies aux bytes referenced by an AUX record.
  void read_aux(std::uint64_t offset, std::span<std::byte> out) const {
    aux_->read_at(offset, out);
  }

  /// Marks aux bytes consumed up to `new_tail` (aux_offset + aux_size).
  /// Clears the full-buffer episode so the next overflow notifies again.
  void consume_aux(std::uint64_t new_tail) {
    aux_->advance_tail(new_tail);
    full_notified_ = false;
  }

  /// Wakeup accounting for pollers: pending() is the number of wakeups not
  /// yet acknowledged.
  [[nodiscard]] std::uint64_t pending_wakeups() const { return stats_.wakeups - acked_wakeups_; }
  void ack_wakeup() {
    if (acked_wakeups_ < stats_.wakeups) ++acked_wakeups_;
  }

  /// Batched acknowledgement used by the drain-round handoff: a round
  /// services the whole fd, so every wakeup raised up to the drain point is
  /// consumed at once.  Returns the number of wakeups acknowledged.
  std::uint64_t ack_all_wakeups() {
    const std::uint64_t pending = pending_wakeups();
    acked_wakeups_ = stats_.wakeups;
    return pending;
  }

  /// Callback invoked on every wakeup (the simulator's monitor hooks this
  /// to schedule a drain; real code would block in epoll_wait instead).
  void set_wakeup_callback(std::function<void(PerfEvent&, std::uint64_t)> cb) {
    wakeup_cb_ = std::move(cb);
  }

  // -- introspection ---------------------------------------------------------
  [[nodiscard]] const PerfEventAttr& attr() const { return attr_; }
  [[nodiscard]] CoreId core() const { return core_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] bool aux_functional() const { return aux_functional_; }
  [[nodiscard]] std::uint64_t effective_watermark() const { return watermark_; }
  [[nodiscard]] const AuxBuffer& aux() const { return *aux_; }
  [[nodiscard]] RingBuffer& ring() { return *ring_; }
  [[nodiscard]] const RingBuffer& ring() const { return *ring_; }
  [[nodiscard]] const TimeConv& time_conv() const { return time_conv_; }

 private:
  void emit_aux_record(std::uint64_t now_ns);

  PerfEventAttr attr_;
  CoreId core_;
  TimeConv time_conv_;
  Throttler* throttler_;  // not owned; shared across events
  bool enabled_ = false;

  // Counting mode.
  std::uint64_t count_ = 0;

  // Sampling mode.
  std::unique_ptr<RingBuffer> ring_;
  std::unique_ptr<AuxBuffer> aux_;
  std::uint64_t watermark_ = 0;
  bool aux_functional_ = true;
  std::uint64_t emitted_head_ = 0;  ///< aux_head covered by emitted AUX records.
  std::uint64_t pending_flags_ = 0;
  bool full_notified_ = false;  ///< Current full-buffer episode already signalled.
  bool was_throttled_ = false;
  std::uint64_t acked_wakeups_ = 0;
  Stats stats_;
  std::function<void(PerfEvent&, std::uint64_t)> wakeup_cb_;
};

/// perf_event_open analog.  Validates the attribute/buffer combination and
/// constructs the event; throws PerfOpenError on invalid input.
std::unique_ptr<PerfEvent> open_event(const PerfEventAttr& attr, CoreId core,
                                      std::size_t ring_pages, std::size_t page_size,
                                      std::size_t aux_bytes, TimeConv time_conv,
                                      Throttler* throttler);

}  // namespace nmo::kern
