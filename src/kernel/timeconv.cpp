#include "kernel/timeconv.hpp"

namespace nmo::kern {

TimeConv TimeConv::from_frequency(double freq_hz, std::uint64_t zero_ns) {
  // Choose the largest shift such that mult = 1e9 * 2^shift / freq fits in
  // 32 bits; larger shifts minimise rounding error, mirroring the kernel's
  // clocks_calc_mult_shift.
  std::uint16_t shift = 32;
  std::uint64_t mult = 0;
  for (; shift > 0; --shift) {
    const double m = 1e9 * static_cast<double>(1ull << shift) / freq_hz;
    if (m < 4294967295.0) {
      mult = static_cast<std::uint64_t>(m + 0.5);
      break;
    }
  }
  return TimeConv(shift, static_cast<std::uint32_t>(mult), zero_ns);
}

TimeConv TimeConv::from_metadata(const MetadataPage& meta) {
  return TimeConv(meta.time_shift, meta.time_mult, meta.time_zero);
}

std::uint64_t TimeConv::to_cycles(std::uint64_t ns) const {
  if (mult_ == 0) return 0;
  const std::uint64_t rel = ns - zero_;
  return static_cast<std::uint64_t>((static_cast<__uint128_t>(rel) << shift_) / mult_);
}

}  // namespace nmo::kern
