// Subset of the Linux perf_event ABI that NMO uses, modelled in userspace.
//
// NMO on real hardware issues perf_event_open with type = 0x2c (the ARM SPE
// PMU), mmaps an (N+1)-page ring buffer whose first page is a
// perf_event_mmap_page, mmaps a separate aux buffer for SPE packet data, and
// consumes PERF_RECORD_AUX records that describe where in the aux buffer new
// packet bytes landed.  This header defines the constants and plain structs
// of that contract; kern::PerfEvent implements the behaviour.
#pragma once

#include <cstdint>

namespace nmo::kern {

/// PMU types (perf_event_attr.type).
inline constexpr std::uint32_t kPerfTypeHardware = 0;
/// Dynamic PMU type id of arm_spe_0 on the paper's testbed.
inline constexpr std::uint32_t kPerfTypeArmSpe = 0x2c;

/// Hardware counting events exposed by the machine model (the paper's
/// baseline uses `perf stat -e mem_access`; bandwidth uses bus accesses).
enum class CountEvent : std::uint32_t {
  kMemAccess = 0,   ///< Retired loads + stores (ARM "MEM_ACCESS", 0x13).
  kBusAccess = 1,   ///< Bus-level accesses (lines to/from DRAM).
  kCycles = 2,
  kInstructions = 3,
  kFpOps = 4,       ///< Retired floating point ops (for arithmetic intensity).
};
inline constexpr std::size_t kNumCountEvents = 5;

// ---------------------------------------------------------------------------
// ARM SPE config bits (perf_event_attr.config), following the arm_spe_pmu
// driver format.  The paper's example value 0x600000001 = ts_enable |
// load_filter | store_filter: hex digit 6 = 2|4 where "2" maps loads and
// "4" maps stores, exactly as described in section IV-A.
// ---------------------------------------------------------------------------
inline constexpr std::uint64_t kSpeTsEnable = 1ull << 0;
inline constexpr std::uint64_t kSpePaEnable = 1ull << 1;
inline constexpr std::uint64_t kSpeJitter = 1ull << 16;
inline constexpr std::uint64_t kSpeBranchFilter = 1ull << 32;
inline constexpr std::uint64_t kSpeLoadFilter = 1ull << 33;
inline constexpr std::uint64_t kSpeStoreFilter = 1ull << 34;
/// min_latency occupies config bits [59:48].
inline constexpr unsigned kSpeMinLatencyShift = 48;
inline constexpr std::uint64_t kSpeMinLatencyMask = 0xfffull;

/// Sampling all loads and stores with timestamps, as used by NMO.
inline constexpr std::uint64_t kSpeConfigLoadsAndStores =
    kSpeTsEnable | kSpeLoadFilter | kSpeStoreFilter;

/// perf_event_attr subset.
struct PerfEventAttr {
  std::uint32_t type = kPerfTypeHardware;
  std::uint64_t config = 0;
  /// Counting event selector when type == kPerfTypeHardware.
  CountEvent count_event = CountEvent::kMemAccess;
  /// SPE sampling period in decoded operations (PMSIRR.INTERVAL analog).
  std::uint64_t sample_period = 0;
  /// Bytes of new aux data that trigger a PERF_RECORD_AUX + wakeup;
  /// 0 selects the kernel default of half the aux buffer.
  std::uint64_t aux_watermark = 0;
  bool disabled = true;
};

// ---------------------------------------------------------------------------
// Record stream (data ring buffer).
// ---------------------------------------------------------------------------
enum class RecordType : std::uint32_t {
  kLost = 2,        ///< PERF_RECORD_LOST: ring full, records dropped.
  kThrottle = 5,    ///< PERF_RECORD_THROTTLE.
  kUnthrottle = 6,  ///< PERF_RECORD_UNTHROTTLE.
  kAux = 11,        ///< PERF_RECORD_AUX: new data in the aux buffer.
  kItraceStart = 12,
};

/// Flags carried by PERF_RECORD_AUX.
inline constexpr std::uint64_t kAuxFlagTruncated = 1ull << 0;
inline constexpr std::uint64_t kAuxFlagOverwrite = 1ull << 1;
inline constexpr std::uint64_t kAuxFlagPartial = 1ull << 2;
/// Set when the hardware detected sample collisions while producing the
/// data described by this record; NMO counts these flags (section VII).
inline constexpr std::uint64_t kAuxFlagCollision = 1ull << 3;

/// PERF_RECORD_AUX payload.
struct AuxRecord {
  std::uint64_t aux_offset = 0;  ///< Offset of the new bytes in the aux area.
  std::uint64_t aux_size = 0;    ///< Number of new bytes.
  std::uint64_t flags = 0;
};

/// PERF_RECORD_LOST payload.
struct LostRecord {
  std::uint64_t lost = 0;  ///< Number of records dropped.
};

/// PERF_RECORD_THROTTLE / UNTHROTTLE payload.
struct ThrottleRecord {
  std::uint64_t time_ns = 0;
};

/// Mirrors perf_event_mmap_page: head/tail cursors for the data and aux
/// areas plus the clock conversion triple used by NMO to map SPE timestamps
/// onto the perf clock (section IV-A, last paragraph).
struct MetadataPage {
  std::uint64_t data_head = 0;
  std::uint64_t data_tail = 0;
  std::uint64_t data_size = 0;
  std::uint64_t aux_head = 0;
  std::uint64_t aux_tail = 0;
  std::uint64_t aux_size = 0;
  std::uint16_t time_shift = 0;
  std::uint32_t time_mult = 0;
  std::uint64_t time_zero = 0;
};

}  // namespace nmo::kern
