// The aux buffer: the separate mmap area into which the SPE device writes
// packet bytes, indexed by aux_head/aux_tail of the metadata page.
//
// "for ARM SPE, the processor uses the ring buffer only for recording
// sample's metadata, i.e., the start address and data size of samples in
// the Aux Buffer, while the detailed information of each sample ... is
// actually stored in the Aux Buffer" (section IV-A).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace nmo::kern {

class AuxBuffer {
 public:
  explicit AuxBuffer(std::size_t size_bytes);

  /// Device side: appends `bytes`.  Returns false when there is not enough
  /// free space, in which case nothing is written (the SPE unit raises a
  /// buffer-full condition and the sample is lost -> TRUNCATED flag).
  bool write(std::span<const std::byte> bytes);

  /// Consumer side: copies `len` bytes starting at absolute offset `pos`
  /// (an aux_offset from a PERF_RECORD_AUX) into `out`.
  void read_at(std::uint64_t pos, std::span<std::byte> out) const;

  /// Consumer side: marks everything up to `new_tail` as consumed.
  void advance_tail(std::uint64_t new_tail);

  [[nodiscard]] std::uint64_t head() const { return head_; }
  [[nodiscard]] std::uint64_t tail() const { return tail_; }
  [[nodiscard]] std::size_t capacity() const { return data_.size(); }
  [[nodiscard]] std::uint64_t used() const { return head_ - tail_; }
  [[nodiscard]] std::uint64_t free_space() const { return data_.size() - used(); }

  /// Bytes the device failed to write because the buffer was full.
  [[nodiscard]] std::uint64_t dropped_bytes() const { return dropped_bytes_; }

 private:
  std::vector<std::byte> data_;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
  std::uint64_t dropped_bytes_ = 0;
};

}  // namespace nmo::kern
