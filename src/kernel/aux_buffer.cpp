#include "kernel/aux_buffer.hpp"

#include <cstring>
#include <stdexcept>

namespace nmo::kern {

AuxBuffer::AuxBuffer(std::size_t size_bytes) {
  if (size_bytes == 0) throw std::invalid_argument("aux buffer size must be nonzero");
  data_.resize(size_bytes);
}

bool AuxBuffer::write(std::span<const std::byte> bytes) {
  if (bytes.size() > free_space()) {
    dropped_bytes_ += bytes.size();
    return false;
  }
  // An empty span may carry a null data(); memcpy's pointer arguments must
  // never be null even for n == 0 (UBSan enforces this).
  if (bytes.empty()) return true;
  const std::size_t cap = data_.size();
  std::size_t at = static_cast<std::size_t>(head_ % cap);
  const std::size_t first = std::min(bytes.size(), cap - at);
  std::memcpy(data_.data() + at, bytes.data(), first);
  if (first < bytes.size()) {
    std::memcpy(data_.data(), bytes.data() + first, bytes.size() - first);
  }
  head_ += bytes.size();
  return true;
}

void AuxBuffer::read_at(std::uint64_t pos, std::span<std::byte> out) const {
  if (out.empty()) return;
  const std::size_t cap = data_.size();
  std::size_t at = static_cast<std::size_t>(pos % cap);
  const std::size_t first = std::min(out.size(), cap - at);
  std::memcpy(out.data(), data_.data() + at, first);
  if (first < out.size()) {
    std::memcpy(out.data() + first, data_.data(), out.size() - first);
  }
}

void AuxBuffer::advance_tail(std::uint64_t new_tail) {
  if (new_tail > head_) new_tail = head_;
  if (new_tail > tail_) tail_ = new_tail;
}

}  // namespace nmo::kern
