// Interrupt-rate throttling, modelling the kernel's
// perf_event_max_sample_rate protection.
//
// When the aggregate sampling interrupt rate exceeds the budget inside a
// one-second window, the kernel throttles sampling until the window ends.
// Figure 11 of the paper observes exactly this ("a substantial increase in
// sampling throttling at a high thread count"), and the resulting sample
// loss explains the accuracy droop past 32 threads in Figure 10.
#pragma once

#include <cstdint>

namespace nmo::kern {

struct ThrottleConfig {
  bool enabled = true;
  /// Aggregate budget of processed samples per virtual second across all
  /// events (kernel sysctl perf_event_max_sample_rate analog).
  std::uint64_t max_samples_per_sec = 4'000'000;
};

class Throttler {
 public:
  explicit Throttler(const ThrottleConfig& config = {}) : config_(config) {}

  /// Reports `n` samples at virtual time `now_ns`.  Returns true if
  /// sampling may proceed; false if the caller is throttled (sampling is
  /// suspended until window_end_ns()).
  bool on_samples(std::uint64_t now_ns, std::uint64_t n) {
    if (!config_.enabled) return true;
    roll(now_ns);
    if (throttled_) return false;
    in_window_ += n;
    if (in_window_ > config_.max_samples_per_sec) {
      throttled_ = true;
      ++throttle_events_;
      return false;
    }
    return true;
  }

  /// True while sampling is suspended at `now_ns`.
  bool is_throttled(std::uint64_t now_ns) {
    roll(now_ns);
    return throttled_;
  }

  /// End of the current one-second window (when an active throttle lifts).
  [[nodiscard]] std::uint64_t window_end_ns() const { return (window_ + 1) * kNsPerSec; }

  /// Number of throttle episodes so far.
  [[nodiscard]] std::uint64_t throttle_events() const { return throttle_events_; }

  [[nodiscard]] const ThrottleConfig& config() const { return config_; }

 private:
  static constexpr std::uint64_t kNsPerSec = 1'000'000'000ull;

  void roll(std::uint64_t now_ns) {
    const std::uint64_t w = now_ns / kNsPerSec;
    if (w != window_) {
      window_ = w;
      in_window_ = 0;
      throttled_ = false;
    }
  }

  ThrottleConfig config_;
  std::uint64_t window_ = 0;
  std::uint64_t in_window_ = 0;
  bool throttled_ = false;
  std::uint64_t throttle_events_ = 0;
};

}  // namespace nmo::kern
