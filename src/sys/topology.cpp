#include "sys/topology.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <cstring>
#endif

namespace nmo::sys {
namespace {

/// First line of a small sysfs file; nullopt when unreadable.
std::optional<std::string> read_first_line(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  return line;
}

/// Parses the decimal id file sysfs keeps per cpu (physical_package_id,
/// cluster_id); nullopt on a missing file or a non-numeric value (some
/// kernels report -1 for unknown packages).
std::optional<std::uint32_t> read_id_file(const std::string& path) {
  const auto line = read_first_line(path);
  if (!line) return std::nullopt;
  const char* s = line->c_str();
  char* end = nullptr;
  const long value = std::strtol(s, &end, 10);
  if (end == s || value < 0) return std::nullopt;
  return static_cast<std::uint32_t>(value);
}

std::uint32_t hardware_cpus() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

std::vector<std::uint32_t> parse_cpu_list(std::string_view text) {
  std::vector<std::uint32_t> cpus;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    std::string_view token =
        text.substr(pos, comma == std::string_view::npos ? std::string_view::npos : comma - pos);
    pos = comma == std::string_view::npos ? text.size() : comma + 1;

    // Trim whitespace (cpulist files end in '\n').
    while (!token.empty() && std::isspace(static_cast<unsigned char>(token.front()))) {
      token.remove_prefix(1);
    }
    while (!token.empty() && std::isspace(static_cast<unsigned char>(token.back()))) {
      token.remove_suffix(1);
    }
    if (token.empty()) continue;

    unsigned lo = 0;
    unsigned hi = 0;
    int consumed = 0;
    if (std::sscanf(std::string(token).c_str(), "%u-%u%n", &lo, &hi, &consumed) == 2 &&
        static_cast<std::size_t>(consumed) == token.size()) {
      if (hi < lo || hi - lo > 4096) continue;  // reversed or absurd range: skip
      for (unsigned c = lo; c <= hi; ++c) cpus.push_back(c);
    } else if (std::sscanf(std::string(token).c_str(), "%u%n", &lo, &consumed) == 1 &&
               static_cast<std::size_t>(consumed) == token.size()) {
      cpus.push_back(lo);
    }
    // Anything else is a malformed token: tolerated, skipped.
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

void CpuTopology::rebuild_maps() {
  std::uint32_t max_cpu = 0;
  for (const auto& node : nodes_) {
    for (const auto cpu : node.cpus) max_cpu = std::max(max_cpu, cpu);
  }
  node_of_.assign(max_cpu + 1, kNoNode);
  for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
    for (const auto cpu : nodes_[n].cpus) node_of_[cpu] = n;
  }
  if (cluster_of_.size() < node_of_.size()) cluster_of_.resize(node_of_.size(), 0);
}

std::uint32_t CpuTopology::num_cpus() const {
  std::uint32_t total = 0;
  for (const auto& node : nodes_) total += static_cast<std::uint32_t>(node.cpus.size());
  return total;
}

std::uint32_t CpuTopology::node_of(std::uint32_t cpu) const {
  if (cpu >= node_of_.size() || node_of_[cpu] == kNoNode) return 0;
  return node_of_[cpu];
}

std::uint32_t CpuTopology::cluster_of(std::uint32_t cpu) const {
  if (cpu >= cluster_of_.size()) return 0;
  return cluster_of_[cpu];
}

CpuTopology CpuTopology::single_node(std::uint32_t cpus) {
  CpuTopology topo;
  TopologyNode node;
  node.id = 0;
  node.cpus.reserve(std::max<std::uint32_t>(1, cpus));
  for (std::uint32_t c = 0; c < std::max<std::uint32_t>(1, cpus); ++c) node.cpus.push_back(c);
  topo.nodes_.push_back(std::move(node));
  topo.source_ = "fallback";
  topo.rebuild_maps();
  return topo;
}

CpuTopology CpuTopology::synthetic(std::uint32_t nodes, std::uint32_t total_cpus) {
  nodes = std::max<std::uint32_t>(1, nodes);
  total_cpus = std::max<std::uint32_t>(1, total_cpus);
  nodes = std::min(nodes, total_cpus);  // never an empty node
  CpuTopology topo;
  const std::uint32_t base = total_cpus / nodes;
  const std::uint32_t extra = total_cpus % nodes;
  std::uint32_t next = 0;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    TopologyNode node;
    node.id = n;
    const std::uint32_t count = base + (n < extra ? 1 : 0);
    for (std::uint32_t c = 0; c < count; ++c) node.cpus.push_back(next++);
    topo.nodes_.push_back(std::move(node));
  }
  topo.source_ = "synthetic";
  topo.rebuild_maps();
  return topo;
}

CpuTopology CpuTopology::discover(const std::string& sysfs_root) noexcept {
  try {
    const std::string cpu_root = sysfs_root + "/devices/system/cpu";
    // The online list is authoritative for what placement may pin to;
    // "present" is the fallback on kernels that hide "online".
    auto list = read_first_line(cpu_root + "/online");
    if (!list) list = read_first_line(cpu_root + "/present");
    std::vector<std::uint32_t> cpus = list ? parse_cpu_list(*list) : std::vector<std::uint32_t>{};
    if (cpus.empty()) return single_node(hardware_cpus());

    // Preferred source: the kernel's NUMA node directories.  Node cpu
    // lists are intersected with the online set (offline cpus stay out of
    // every placement mask).
    std::map<std::uint32_t, std::vector<std::uint32_t>> by_node;
    const std::string node_root = sysfs_root + "/devices/system/node";
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(node_root, ec)) {
      unsigned id = 0;
      const std::string stem = entry.path().filename().string();
      if (std::sscanf(stem.c_str(), "node%u", &id) != 1) continue;
      const auto cpulist = read_first_line(entry.path().string() + "/cpulist");
      if (!cpulist) continue;
      std::vector<std::uint32_t> node_cpus;
      for (const auto cpu : parse_cpu_list(*cpulist)) {
        if (std::binary_search(cpus.begin(), cpus.end(), cpu)) node_cpus.push_back(cpu);
      }
      if (!node_cpus.empty()) by_node[id] = std::move(node_cpus);
    }

    // No node directories (non-NUMA kernels, masked sysfs): group by the
    // per-cpu physical_package_id, treating each package as a node.  A cpu
    // with no readable package file lands in package 0.
    if (by_node.empty()) {
      for (const auto cpu : cpus) {
        const auto package = read_id_file(cpu_root + "/cpu" + std::to_string(cpu) +
                                          "/topology/physical_package_id");
        by_node[package.value_or(0)].push_back(cpu);
      }
    }

    CpuTopology topo;
    for (auto& [id, node_cpus] : by_node) {
      TopologyNode node;
      node.id = id;
      std::sort(node_cpus.begin(), node_cpus.end());
      node.cpus = std::move(node_cpus);
      topo.nodes_.push_back(std::move(node));
    }
    if (topo.nodes_.empty()) return single_node(hardware_cpus());
    topo.source_ = "sysfs";
    topo.rebuild_maps();

    // A cpu the node lists missed still needs a deterministic answer:
    // node_of() already defaults it to 0.  Clusters are informational.
    for (const auto cpu : cpus) {
      if (cpu >= topo.cluster_of_.size()) topo.cluster_of_.resize(cpu + 1, 0);
      const auto cluster =
          read_id_file(cpu_root + "/cpu" + std::to_string(cpu) + "/topology/cluster_id");
      topo.cluster_of_[cpu] = cluster.value_or(topo.node_of(cpu));
    }
    return topo;
  } catch (...) {
    // Discovery must never take the pipeline down; run unplaced instead.
    return single_node(hardware_cpus());
  }
}

bool set_current_thread_name(const char* name) {
#if defined(__linux__)
  if (name == nullptr) return false;
  char truncated[16];  // kernel limit: 15 chars + NUL
  std::strncpy(truncated, name, sizeof(truncated) - 1);
  truncated[sizeof(truncated) - 1] = '\0';
  return pthread_setname_np(pthread_self(), truncated) == 0;
#else
  (void)name;
  return false;
#endif
}

bool pin_current_thread(const std::vector<std::uint32_t>& cpus) {
#if defined(__linux__)
  if (cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (const auto cpu : cpus) {
    if (cpu < CPU_SETSIZE) {
      CPU_SET(cpu, &set);
      any = true;
    }
  }
  if (!any) return false;
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpus;
  return false;
#endif
}

}  // namespace nmo::sys
