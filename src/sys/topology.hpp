// CPU/NUMA topology discovery and thread-placement primitives.
//
// At production scale the profiler's own pipeline must respect the memory
// topology it is measuring: a decode shard pulling aux bytes across a
// socket boundary burns the very interconnect bandwidth the paper's
// figures quantify.  CpuTopology maps cores to NUMA nodes (sockets) and
// clusters the way gator's CpuUtils_Topology walks sysfs + pmus.xml to map
// cores to PMU/SPE instances:
//
//  * discover(sysfs_root) parses the host's sysfs - the online cpu list,
//    /sys/devices/system/node/node<K>/cpulist, and the per-cpu
//    topology/physical_package_id + cluster_id files.  It never throws:
//    missing or garbled files degrade to a single-node topology covering
//    every cpu (the safe answer on containers that mask sysfs).  The root
//    is a parameter so tests exercise discovery against fixture trees.
//  * synthetic(nodes, total_cpus) builds a deterministic topology with
//    cpus split contiguously and as evenly as possible across nodes - the
//    injection path that keeps the simulator and every test independent of
//    the host machine.
//
// Node identifiers used by callers are *dense indices* (0..num_nodes()-1
// in ascending sysfs-id order); TopologyNode::id keeps the original sysfs
// id for display.  The pinning/naming helpers are Linux-gated and strictly
// advisory: a failed sched_setaffinity or pthread_setname_np returns false
// and the pipeline proceeds unpinned, never degraded.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace nmo::sys {

/// One NUMA node (socket) of the topology.
struct TopologyNode {
  std::uint32_t id = 0;                 ///< Original sysfs node id (display only).
  std::vector<std::uint32_t> cpus;      ///< Sorted ascending.
};

class CpuTopology {
 public:
  /// Empty topology: no nodes.  node_of() answers 0, multi_node() false -
  /// the "placement off" value every config defaults to.
  CpuTopology() = default;

  /// Discovers the host topology from `sysfs_root` (default "/sys").
  /// Never throws; any missing/garbled input falls back to a single node
  /// covering every cpu the kernel reports (source() == "fallback").
  [[nodiscard]] static CpuTopology discover(const std::string& sysfs_root = "/sys") noexcept;

  /// Deterministic synthetic topology: `total_cpus` cpus 0..total_cpus-1
  /// split contiguously across `nodes` nodes, as evenly as possible (the
  /// first total_cpus % nodes nodes hold one extra cpu).  Zero arguments
  /// are clamped to 1.
  [[nodiscard]] static CpuTopology synthetic(std::uint32_t nodes, std::uint32_t total_cpus);

  /// Single node holding cpus 0..cpus-1 (the discovery fallback shape).
  [[nodiscard]] static CpuTopology single_node(std::uint32_t cpus);

  [[nodiscard]] bool empty() const { return nodes_.empty(); }
  [[nodiscard]] bool multi_node() const { return nodes_.size() > 1; }
  [[nodiscard]] std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  [[nodiscard]] std::uint32_t num_cpus() const;
  [[nodiscard]] const std::vector<TopologyNode>& nodes() const { return nodes_; }

  /// Dense node index of `cpu`; 0 for a cpu the topology does not cover
  /// (placement must always have an answer, never an error).
  [[nodiscard]] std::uint32_t node_of(std::uint32_t cpu) const;
  /// Cluster id of `cpu` (asymmetric big.LITTLE-style clusters); 0 when
  /// unknown.  Informational: placement keys off nodes, not clusters.
  [[nodiscard]] std::uint32_t cluster_of(std::uint32_t cpu) const;

  /// Where the topology came from: "none" (empty), "sysfs", "fallback"
  /// (discovery degraded) or "synthetic".
  [[nodiscard]] std::string_view source() const { return source_; }

 private:
  std::vector<TopologyNode> nodes_;
  /// Flat cpu -> dense node index map (index = cpu id); kNoNode for gaps.
  std::vector<std::uint32_t> node_of_;
  std::vector<std::uint32_t> cluster_of_;
  std::string source_ = "none";

  static constexpr std::uint32_t kNoNode = ~std::uint32_t{0};
  void rebuild_maps();
};

/// Parses a kernel cpu-list string ("0-3,5,8-9") into a sorted, deduplicated
/// cpu vector.  Tolerant: malformed tokens and reversed ranges are skipped,
/// a fully garbled string yields an empty vector (never a throw).
[[nodiscard]] std::vector<std::uint32_t> parse_cpu_list(std::string_view text);

/// Names the calling thread (pthread_setname_np; truncated to the kernel's
/// 15-character limit).  Returns false off Linux or on failure.
bool set_current_thread_name(const char* name);

/// Pins the calling thread to `cpus` (sched_setaffinity).  Advisory:
/// returns false off Linux, on an empty set, or when the kernel rejects
/// the mask (e.g. a synthetic topology naming cpus this host lacks).
bool pin_current_thread(const std::vector<std::uint32_t>& cpus);

/// The one sanctioned way to spawn a long-lived thread: every worker gets
/// a kernel-visible name ("nmo-dec0", "nmo-drain", ...) before its body
/// runs, so ps/top/gdb and trace tooling can tell the pipeline stages
/// apart.  nmo-lint's naked-thread rule rejects raw std::thread
/// construction anywhere else in src/ and tools/.
template <typename Fn, typename... Args>
[[nodiscard]] std::thread named_thread(std::string name, Fn&& fn, Args&&... args) {
  return std::thread(  // nmo-lint: allow(naked-thread)
      [name = std::move(name)](auto&& body, auto&&... body_args) {
        set_current_thread_name(name.c_str());
        std::forward<decltype(body)>(body)(std::forward<decltype(body_args)>(body_args)...);
      },
      std::forward<Fn>(fn), std::forward<Args>(args)...);
}

}  // namespace nmo::sys
